
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_band_shape.cc" "bench/CMakeFiles/ablation_band_shape.dir/ablation_band_shape.cc.o" "gcc" "bench/CMakeFiles/ablation_band_shape.dir/ablation_band_shape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/humdex_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/humdex_qbh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/humdex_gemini.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/humdex_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/humdex_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/humdex_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/humdex_music.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/humdex_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/humdex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
