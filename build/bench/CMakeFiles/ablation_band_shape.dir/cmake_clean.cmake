file(REMOVE_RECURSE
  "CMakeFiles/ablation_band_shape.dir/ablation_band_shape.cc.o"
  "CMakeFiles/ablation_band_shape.dir/ablation_band_shape.cc.o.d"
  "ablation_band_shape"
  "ablation_band_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_band_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
