# Empty compiler generated dependencies file for ablation_band_shape.
# This may be replaced when dependencies are built.
