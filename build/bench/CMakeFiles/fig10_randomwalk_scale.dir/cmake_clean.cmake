file(REMOVE_RECURSE
  "CMakeFiles/fig10_randomwalk_scale.dir/fig10_randomwalk_scale.cc.o"
  "CMakeFiles/fig10_randomwalk_scale.dir/fig10_randomwalk_scale.cc.o.d"
  "fig10_randomwalk_scale"
  "fig10_randomwalk_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_randomwalk_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
