# Empty compiler generated dependencies file for fig10_randomwalk_scale.
# This may be replaced when dependencies are built.
