# Empty compiler generated dependencies file for fig6_tightness.
# This may be replaced when dependencies are built.
