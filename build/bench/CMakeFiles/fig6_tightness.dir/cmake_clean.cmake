file(REMOVE_RECURSE
  "CMakeFiles/fig6_tightness.dir/fig6_tightness.cc.o"
  "CMakeFiles/fig6_tightness.dir/fig6_tightness.cc.o.d"
  "fig6_tightness"
  "fig6_tightness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
