# Empty compiler generated dependencies file for fig7_tightness_vs_width.
# This may be replaced when dependencies are built.
