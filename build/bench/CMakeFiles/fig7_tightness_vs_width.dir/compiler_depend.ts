# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig7_tightness_vs_width.
