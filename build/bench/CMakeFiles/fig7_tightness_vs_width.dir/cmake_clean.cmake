file(REMOVE_RECURSE
  "CMakeFiles/fig7_tightness_vs_width.dir/fig7_tightness_vs_width.cc.o"
  "CMakeFiles/fig7_tightness_vs_width.dir/fig7_tightness_vs_width.cc.o.d"
  "fig7_tightness_vs_width"
  "fig7_tightness_vs_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tightness_vs_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
