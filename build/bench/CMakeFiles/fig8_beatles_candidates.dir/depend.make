# Empty dependencies file for fig8_beatles_candidates.
# This may be replaced when dependencies are built.
