file(REMOVE_RECURSE
  "CMakeFiles/fig8_beatles_candidates.dir/fig8_beatles_candidates.cc.o"
  "CMakeFiles/fig8_beatles_candidates.dir/fig8_beatles_candidates.cc.o.d"
  "fig8_beatles_candidates"
  "fig8_beatles_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_beatles_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
