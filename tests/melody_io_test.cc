#include <gtest/gtest.h>

#include <cstdio>

#include "music/melody_io.h"
#include "music/song_generator.h"

namespace humdex {
namespace {

TEST(MelodyIoTest, ParseMinimalCorpus) {
  std::string text =
      "# a comment\n"
      "melody tune_a\n"
      "60 1.0\n"
      "62 0.5\n"
      "end\n"
      "\n"
      "melody tune_b\n"
      "55.5 2\n"
      "end\n";
  std::vector<Melody> melodies;
  ASSERT_TRUE(ParseMelodies(text, &melodies).ok());
  ASSERT_EQ(melodies.size(), 2u);
  EXPECT_EQ(melodies[0].name, "tune_a");
  EXPECT_EQ(melodies[0].size(), 2u);
  EXPECT_DOUBLE_EQ(melodies[0].notes[1].pitch, 62.0);
  EXPECT_DOUBLE_EQ(melodies[0].notes[1].duration, 0.5);
  EXPECT_EQ(melodies[1].name, "tune_b");
  EXPECT_DOUBLE_EQ(melodies[1].notes[0].pitch, 55.5);
}

TEST(MelodyIoTest, ToleratesWhitespaceAndCrLf) {
  std::string text = "melody x\r\n  60 1 \r\n\tend\r\n";
  std::vector<Melody> melodies;
  ASSERT_TRUE(ParseMelodies(text, &melodies).ok());
  ASSERT_EQ(melodies.size(), 1u);
  EXPECT_EQ(melodies[0].size(), 1u);
}

TEST(MelodyIoTest, ErrorsCarryLineNumbers) {
  std::vector<Melody> melodies;
  Status s = ParseMelodies("melody a\n60 oops\nend\n", &melodies);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);

  s = ParseMelodies("60 1\n", &melodies);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 1"), std::string::npos);
  EXPECT_NE(s.message().find("outside a melody block"), std::string::npos);
}

TEST(MelodyIoTest, RejectsStructuralErrors) {
  std::vector<Melody> melodies;
  EXPECT_FALSE(ParseMelodies("melody a\nmelody b\nend\n", &melodies).ok());
  EXPECT_FALSE(ParseMelodies("end\n", &melodies).ok());
  EXPECT_FALSE(ParseMelodies("melody a\nend\n", &melodies).ok());  // empty
  EXPECT_FALSE(ParseMelodies("melody a\n60 1\n", &melodies).ok());  // no end
  EXPECT_FALSE(ParseMelodies("melody a\n60 1 extra\nend\n", &melodies).ok());
  EXPECT_FALSE(ParseMelodies("melody a\n60 -1\nend\n", &melodies).ok());
  EXPECT_FALSE(ParseMelodies("melody a\n60 0\nend\n", &melodies).ok());
}

TEST(MelodyIoTest, RoundTripPreservesCorpus) {
  SongGenerator gen(5);
  std::vector<Melody> corpus = gen.GeneratePhrases(25);
  std::string text = SerializeMelodies(corpus);
  std::vector<Melody> parsed;
  ASSERT_TRUE(ParseMelodies(text, &parsed).ok());
  ASSERT_EQ(parsed.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(parsed[i].name, corpus[i].name);
    ASSERT_EQ(parsed[i].size(), corpus[i].size());
    for (std::size_t j = 0; j < corpus[i].size(); ++j) {
      EXPECT_DOUBLE_EQ(parsed[i].notes[j].pitch, corpus[i].notes[j].pitch);
      EXPECT_DOUBLE_EQ(parsed[i].notes[j].duration, corpus[i].notes[j].duration);
    }
  }
}

TEST(MelodyIoTest, FileRoundTrip) {
  SongGenerator gen(9);
  std::vector<Melody> corpus = gen.GeneratePhrases(5);
  std::string path = ::testing::TempDir() + "/humdex_io_test.melodies";
  ASSERT_TRUE(SaveMelodiesToFile(path, corpus).ok());
  std::vector<Melody> loaded;
  ASSERT_TRUE(LoadMelodiesFromFile(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), corpus.size());
  std::remove(path.c_str());
}

TEST(MelodyIoTest, MissingFileIsNotFound) {
  std::vector<Melody> melodies;
  Status s = LoadMelodiesFromFile("/nonexistent/humdex.melodies", &melodies);
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
}

TEST(MelodyIoTest, MelodyWithoutNameParses) {
  std::vector<Melody> melodies;
  ASSERT_TRUE(ParseMelodies("melody\n60 1\nend\n", &melodies).ok());
  EXPECT_EQ(melodies[0].name, "");
}

}  // namespace
}  // namespace humdex
