#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "audio/synth.h"
#include "audio/wav_io.h"

namespace humdex {
namespace {

TEST(WavIoTest, EncodeHeaderLayout) {
  Series samples{0.0, 0.5, -0.5, 1.0};
  std::string bytes = EncodeWav(samples, 8000);
  ASSERT_EQ(bytes.size(), 44u + 8u);
  EXPECT_EQ(bytes.substr(0, 4), "RIFF");
  EXPECT_EQ(bytes.substr(8, 4), "WAVE");
  EXPECT_EQ(bytes.substr(12, 4), "fmt ");
  EXPECT_EQ(bytes.substr(36, 4), "data");
}

TEST(WavIoTest, RoundTripPreservesSamples) {
  Series samples;
  for (int i = 0; i < 1000; ++i) {
    samples.push_back(std::sin(2.0 * M_PI * i / 50.0) * 0.8);
  }
  WavData decoded;
  ASSERT_TRUE(DecodeWav(EncodeWav(samples, 44100), &decoded).ok());
  EXPECT_DOUBLE_EQ(decoded.sample_rate, 44100.0);
  ASSERT_EQ(decoded.samples.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_NEAR(decoded.samples[i], samples[i], 1.0 / 32767.0);
  }
}

TEST(WavIoTest, ClampsOutOfRangeSamples) {
  Series samples{5.0, -5.0};
  WavData decoded;
  ASSERT_TRUE(DecodeWav(EncodeWav(samples, 8000), &decoded).ok());
  EXPECT_NEAR(decoded.samples[0], 1.0, 1e-4);
  EXPECT_NEAR(decoded.samples[1], -1.0, 1e-4);
}

TEST(WavIoTest, RejectsMalformedInput) {
  WavData out;
  EXPECT_FALSE(DecodeWav("", &out).ok());
  EXPECT_FALSE(DecodeWav("RIFFxxxxWAVE", &out).ok());
  EXPECT_FALSE(DecodeWav(std::string(44, 'x'), &out).ok());

  // Truncated data chunk.
  std::string good = EncodeWav({0.1, 0.2, 0.3}, 8000);
  std::string truncated = good.substr(0, good.size() - 2);
  EXPECT_FALSE(DecodeWav(truncated, &out).ok());

  // Stereo is rejected.
  std::string stereo = good;
  stereo[22] = 2;
  EXPECT_FALSE(DecodeWav(stereo, &out).ok());

  // Non-PCM format code is rejected.
  std::string alaw = good;
  alaw[20] = 6;
  EXPECT_FALSE(DecodeWav(alaw, &out).ok());
}

TEST(WavIoTest, FileRoundTrip) {
  Series hum_frames(50, 60.0);
  Series pcm = SynthesizeHum(hum_frames);
  std::string path = ::testing::TempDir() + "/humdex_wav_test.wav";
  ASSERT_TRUE(WriteWavFile(path, pcm, 8000).ok());
  WavData loaded;
  ASSERT_TRUE(ReadWavFile(path, &loaded).ok());
  EXPECT_EQ(loaded.samples.size(), pcm.size());
  EXPECT_DOUBLE_EQ(loaded.sample_rate, 8000.0);
  std::remove(path.c_str());
}

TEST(WavIoTest, MissingFileIsNotFound) {
  WavData out;
  EXPECT_EQ(ReadWavFile("/nonexistent/foo.wav", &out).code(),
            Status::Code::kNotFound);
}

TEST(WavIoTest, EmptyAudioIsValid) {
  WavData out;
  ASSERT_TRUE(DecodeWav(EncodeWav({}, 8000), &out).ok());
  EXPECT_TRUE(out.samples.empty());
}

}  // namespace
}  // namespace humdex
