#include <gtest/gtest.h>

#include <cmath>

#include "audio/pitch_detect.h"
#include "audio/synth.h"
#include "music/hummer.h"
#include "music/pitch_tracker.h"
#include "ts/time_series.h"

namespace humdex {
namespace {

Series ConstantPitchFrames(double midi, std::size_t frames) {
  return Series(frames, midi);
}

TEST(MidiHzTest, ReferencePitches) {
  EXPECT_NEAR(MidiToHz(69), 440.0, 1e-9);         // A4
  EXPECT_NEAR(MidiToHz(57), 220.0, 1e-9);         // A3
  EXPECT_NEAR(MidiToHz(60), 261.6256, 1e-3);      // C4
  EXPECT_NEAR(HzToMidi(440.0), 69.0, 1e-12);
  EXPECT_NEAR(HzToMidi(MidiToHz(64.37)), 64.37, 1e-9);
}

TEST(SynthTest, OutputLengthMatchesFrames) {
  SynthOptions opt;
  Series audio = SynthesizeHum(ConstantPitchFrames(60, 50), opt);
  // 50 frames at 100 fps = 0.5s at 8000 Hz = 4000 samples.
  EXPECT_EQ(audio.size(), 4000u);
}

TEST(SynthTest, VoicedAudioHasEnergySilenceDoesNot) {
  SynthOptions opt;
  opt.breath_noise = 0.0;
  Series voiced = SynthesizeHum(ConstantPitchFrames(60, 30), opt);
  double energy = 0.0;
  for (double v : voiced) energy += v * v;
  EXPECT_GT(energy / static_cast<double>(voiced.size()), 0.01);

  Series silent_frames(30, SilentFrame());
  Series silent = SynthesizeHum(silent_frames, opt);
  double silent_energy = 0.0;
  for (double v : silent) silent_energy += v * v;
  EXPECT_LT(silent_energy / static_cast<double>(silent.size()), 1e-6);
}

TEST(SynthTest, FundamentalPeriodCorrect) {
  // Count zero crossings of a 1-harmonic synthesis: ~2 per period.
  SynthOptions opt;
  opt.harmonics = 1;
  opt.breath_noise = 0.0;
  Series audio = SynthesizeHum(ConstantPitchFrames(69, 100), opt);  // 440 Hz
  std::size_t crossings = 0;
  for (std::size_t i = 1; i < audio.size(); ++i) {
    if ((audio[i - 1] < 0.0) != (audio[i] < 0.0)) ++crossings;
  }
  double seconds = static_cast<double>(audio.size()) / opt.sample_rate;
  double estimated_hz = static_cast<double>(crossings) / (2.0 * seconds);
  EXPECT_NEAR(estimated_hz, 440.0, 10.0);
}

TEST(SynthTest, AmplitudeBounded) {
  SynthOptions opt;
  opt.amplitude = 0.5;
  opt.breath_noise = 0.0;
  Series audio = SynthesizeHum(ConstantPitchFrames(55, 100), opt);
  for (double v : audio) EXPECT_LE(std::fabs(v), 1.0);
}

class DetectorPitchSweep : public ::testing::TestWithParam<double> {};

TEST_P(DetectorPitchSweep, RecoversConstantPitch) {
  const double midi = GetParam();
  SynthOptions sopt;
  sopt.breath_noise = 0.002;
  Series audio = SynthesizeHum(ConstantPitchFrames(midi, 60), sopt);
  PitchDetector detector;
  Series pitches = RemoveSilence(detector.Detect(audio));
  ASSERT_GT(pitches.size(), 20u);
  // Median detected pitch within 0.3 semitones of the truth.
  std::sort(pitches.begin(), pitches.end());
  EXPECT_NEAR(pitches[pitches.size() / 2], midi, 0.3) << "midi=" << midi;
}

INSTANTIATE_TEST_SUITE_P(Range, DetectorPitchSweep,
                         ::testing::Values(48.0, 55.0, 60.0, 64.0, 69.0, 72.0));

TEST(DetectorTest, SilenceYieldsSilentFrames) {
  PitchDetector detector;
  Series quiet(8000, 0.0);
  Series pitches = detector.Detect(quiet);
  for (double p : pitches) EXPECT_TRUE(IsSilentFrame(p));
}

TEST(DetectorTest, TracksAStepChange) {
  SynthOptions sopt;
  sopt.breath_noise = 0.0;
  Series frames;
  for (int i = 0; i < 60; ++i) frames.push_back(60.0);
  for (int i = 0; i < 60; ++i) frames.push_back(67.0);
  Series audio = SynthesizeHum(frames, sopt);
  PitchDetector detector;
  Series pitches = detector.Detect(audio);
  ASSERT_GT(pitches.size(), 80u);
  // First quarter ~60, last quarter ~67.
  double early = 0.0, late = 0.0;
  std::size_t quarter = pitches.size() / 4;
  std::size_t early_n = 0, late_n = 0;
  for (std::size_t i = 0; i < quarter; ++i) {
    if (!IsSilentFrame(pitches[i])) {
      early += pitches[i];
      ++early_n;
    }
  }
  for (std::size_t i = pitches.size() - quarter; i < pitches.size(); ++i) {
    if (!IsSilentFrame(pitches[i])) {
      late += pitches[i];
      ++late_n;
    }
  }
  ASSERT_GT(early_n, 0u);
  ASSERT_GT(late_n, 0u);
  EXPECT_NEAR(early / static_cast<double>(early_n), 60.0, 0.5);
  EXPECT_NEAR(late / static_cast<double>(late_n), 67.0, 0.5);
}

TEST(DetectorTest, RoundTripThroughRealHum) {
  // Full acoustic loop: hummer pitch frames -> audio -> detector -> frames.
  // The recovered contour must stay close to the hummer's (median |error|
  // well under a semitone).
  Melody m;
  m.notes = {{60, 1}, {62, 1}, {64, 2}, {62, 1}, {60, 2}};
  Hummer hummer(HummerProfile::Good(), 11);
  Series true_frames = hummer.Hum(m);
  Series audio = SynthesizeHum(true_frames);
  PitchDetector detector;
  Series detected = RemoveSilence(detector.Detect(audio));
  ASSERT_GT(detected.size(), true_frames.size() / 2);

  // Compare medians of thirds (alignment between hop grids is inexact).
  auto median_of = [](Series v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  Series true_third(true_frames.begin(),
                    true_frames.begin() + static_cast<long>(true_frames.size() / 3));
  Series det_third(detected.begin(),
                   detected.begin() + static_cast<long>(detected.size() / 3));
  EXPECT_NEAR(median_of(det_third), median_of(true_third), 0.5);
}

}  // namespace
}  // namespace humdex
