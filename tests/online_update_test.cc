// Online mutation and crash recovery for QbhSystem: Insert/Remove semantics
// on the live index, tombstone-aware accessors, the abort-free serving path,
// the WAL + checkpoint durability protocol under crash-at-every-step fault
// injection, and writer/reader concurrency (the TSan target).
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "music/hummer.h"
#include "music/song_generator.h"
#include "obs/metrics.h"
#include "qbh/qbh_system.h"
#include "qbh/storage.h"
#include "qbh/wal.h"
#include "serve/sharded_engine.h"
#include "util/env.h"

namespace humdex {
namespace {

std::vector<Melody> SmallCorpus(std::size_t count, std::uint64_t seed = 1) {
  SongGenerator gen(seed);
  return gen.GeneratePhrases(count);
}

QbhSystem BuildSystem(const std::vector<Melody>& corpus,
                      QbhOptions opt = QbhOptions()) {
  QbhSystem system(opt);
  for (const Melody& m : corpus) system.AddMelody(m);
  system.Build();
  return system;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

void CleanDb(Env* env, const std::string& path) {
  for (const std::string& p : {path, QbhSystem::WalPathFor(path)}) {
    if (env->Exists(p)) {
      Status st = env->Delete(p);
      (void)st;
    }
  }
}

/// Both systems answer a panel of hums identically: same ids, same names,
/// same distances bit for bit.
void ExpectSameAnswers(const QbhSystem& a, const QbhSystem& b,
                       const std::vector<Melody>& hum_targets) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.next_id(), b.next_id());
  Hummer hummer(HummerProfile::Good(), 99);
  for (const Melody& target : hum_targets) {
    Series hum = hummer.Hum(target);
    auto ra = a.Query(hum, 5);
    auto rb = b.Query(hum, 5);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].id, rb[i].id);
      EXPECT_EQ(ra[i].name, rb[i].name);
      EXPECT_EQ(ra[i].distance, rb[i].distance);  // bit-identical
    }
  }
}

// --- In-memory online mutation ----------------------------------------------

TEST(OnlineUpdateTest, InsertedMelodyBecomesQueryable) {
  auto corpus = SmallCorpus(40);
  QbhSystem system = BuildSystem(corpus);
  Melody extra = SmallCorpus(1, 777)[0];
  extra.name = "the new one";

  auto id = system.Insert(extra);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 40);
  EXPECT_EQ(system.size(), 41u);
  ASSERT_TRUE(system.melody(40).has_value());
  EXPECT_EQ(system.melody(40)->name, "the new one");

  Hummer hummer(HummerProfile::Perfect(), 5);
  auto matches = system.Query(hummer.Hum(extra), 1);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].id, 40);
  EXPECT_EQ(matches[0].name, "the new one");
}

TEST(OnlineUpdateTest, RemovedMelodyVanishesFromQueries) {
  auto corpus = SmallCorpus(40);
  QbhSystem system = BuildSystem(corpus);
  ASSERT_TRUE(system.Remove(12).ok());
  EXPECT_EQ(system.size(), 39u);
  EXPECT_FALSE(system.melody(12).has_value());
  EXPECT_EQ(system.next_id(), 40);  // ids are never reused

  Hummer hummer(HummerProfile::Perfect(), 5);
  auto matches = system.Query(hummer.Hum(corpus[12]), 5);
  for (const QbhMatch& m : matches) EXPECT_NE(m.id, 12);
  EXPECT_EQ(system.RankOf(hummer.Hum(corpus[12]), 12), 0u);
}

TEST(OnlineUpdateTest, InsertNeverReusesRemovedIds) {
  auto corpus = SmallCorpus(10);
  QbhSystem system = BuildSystem(corpus);
  ASSERT_TRUE(system.Remove(9).ok());
  auto id = system.Insert(SmallCorpus(1, 88)[0]);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 10);  // not 9
  EXPECT_FALSE(system.melody(9).has_value());
  ASSERT_TRUE(system.melody(10).has_value());
}

TEST(OnlineUpdateTest, RemoveErrorsAreStatusesNotAborts) {
  auto corpus = SmallCorpus(3);
  QbhSystem system = BuildSystem(corpus);
  EXPECT_EQ(system.Remove(-1).code(), Status::Code::kNotFound);
  EXPECT_EQ(system.Remove(3).code(), Status::Code::kNotFound);
  ASSERT_TRUE(system.Remove(1).ok());
  EXPECT_EQ(system.Remove(1).code(), Status::Code::kNotFound);  // double free
  ASSERT_TRUE(system.Remove(0).ok());
  // The last live melody is not removable: an empty corpus has no valid
  // index or checkpoint form.
  EXPECT_EQ(system.Remove(2).code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(system.size(), 1u);
}

TEST(OnlineUpdateTest, InsertValidatesNotes) {
  auto corpus = SmallCorpus(5);
  QbhSystem system = BuildSystem(corpus);
  Melody empty;
  empty.name = "empty";
  EXPECT_FALSE(system.Insert(empty).ok());
  Melody bad_pitch;
  bad_pitch.notes = {{std::nan(""), 1.0}};
  EXPECT_FALSE(system.Insert(bad_pitch).ok());
  Melody bad_duration;
  bad_duration.notes = {{60.0, 0.0}};
  EXPECT_FALSE(system.Insert(bad_duration).ok());
  EXPECT_EQ(system.size(), 5u);
}

TEST(OnlineUpdateTest, MutationBeforeBuildIsFailedPrecondition) {
  QbhSystem system;
  system.AddMelody(SmallCorpus(1)[0]);
  EXPECT_EQ(system.Insert(SmallCorpus(1, 2)[0]).status().code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(system.Remove(0).code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(system.Checkpoint().code(), Status::Code::kFailedPrecondition);
}

TEST(OnlineUpdateTest, MelodyAccessorIsTombstoneAware) {
  auto corpus = SmallCorpus(5);
  QbhSystem system = BuildSystem(corpus);
  EXPECT_FALSE(system.melody(-1).has_value());
  EXPECT_FALSE(system.melody(5).has_value());
  ASSERT_TRUE(system.melody(2).has_value());
  ASSERT_TRUE(system.Remove(2).ok());
  EXPECT_FALSE(system.melody(2).has_value());
}

TEST(OnlineUpdateTest, MutatedSystemMatchesFreshlyBuiltEquivalent) {
  auto corpus = SmallCorpus(30);
  QbhSystem mutated = BuildSystem(corpus);
  ASSERT_TRUE(mutated.Remove(4).ok());
  ASSERT_TRUE(mutated.Remove(17).ok());
  Melody extra = SmallCorpus(1, 55)[0];
  ASSERT_TRUE(mutated.Insert(extra).ok());

  // The same corpus assembled offline with identical ids.
  QbhSystem fresh;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (i == 4 || i == 17) continue;
    ASSERT_TRUE(
        fresh.AddMelodyWithId(corpus[i], static_cast<std::int64_t>(i)).ok());
  }
  ASSERT_TRUE(fresh.AddMelodyWithId(extra, 30).ok());
  fresh.Build();

  std::vector<Melody> targets = {corpus[0], corpus[4], corpus[25], extra};
  ExpectSameAnswers(mutated, fresh, targets);
}

// --- Abort-free serving path -------------------------------------------------

TEST(OnlineUpdateTest, UnvoicedHumIsRejectedNotAborted) {
  auto corpus = SmallCorpus(10);
  QbhSystem system = BuildSystem(corpus);
  obs::Counter& rejected =
      obs::MetricsRegistry::Default().GetCounter("qbh.queries_rejected");
  const std::uint64_t before = rejected.value();

  const double kSilent = std::numeric_limits<double>::quiet_NaN();
  QueryStats stats;
  auto matches = system.Query(Series(64, kSilent), 3, &stats);
  EXPECT_TRUE(matches.empty());
  EXPECT_TRUE(stats.rejected);
  EXPECT_TRUE(system.Query(Series(), 3, &stats).empty());
  EXPECT_TRUE(stats.rejected);
  EXPECT_GE(rejected.value(), before + 2);
}

TEST(OnlineUpdateTest, NonFiniteHumIsRejectedNotAborted) {
  auto corpus = SmallCorpus(10);
  QbhSystem system = BuildSystem(corpus);
  Series inf_hum(64, 60.0);
  inf_hum[10] = std::numeric_limits<double>::infinity();
  QueryStats stats;
  EXPECT_TRUE(system.Query(inf_hum, 3, &stats).empty());
  EXPECT_TRUE(stats.rejected);
  EXPECT_EQ(system.RankOf(inf_hum, 0), 0u);
}

TEST(OnlineUpdateTest, MalformedAudioIsRejectedNotAborted) {
  auto corpus = SmallCorpus(10);
  QbhSystem system = BuildSystem(corpus);
  QueryStats stats;
  EXPECT_TRUE(system.QueryAudio(Series(), 8000.0, 3, &stats).empty());
  EXPECT_TRUE(stats.rejected);
  Series pcm(4000, 0.1);
  EXPECT_TRUE(system.QueryAudio(pcm, 0.0, 3, &stats).empty());
  EXPECT_TRUE(stats.rejected);
  EXPECT_TRUE(system.QueryAudio(pcm, std::nan(""), 3, &stats).empty());
  EXPECT_TRUE(stats.rejected);
  EXPECT_TRUE(system.QueryAudio(pcm, 1e12, 3, &stats).empty());
  EXPECT_TRUE(stats.rejected);
  pcm[100] = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(system.QueryAudio(pcm, 8000.0, 3, &stats).empty());
  EXPECT_TRUE(stats.rejected);
}

TEST(OnlineUpdateTest, RejectedQueriesInsideBatchDoNotPoisonOthers) {
  auto corpus = SmallCorpus(20);
  QbhSystem system = BuildSystem(corpus);
  Hummer hummer(HummerProfile::Perfect(), 3);
  std::vector<Series> hums = {
      hummer.Hum(corpus[7]),
      Series(32, std::numeric_limits<double>::quiet_NaN()),
      hummer.Hum(corpus[9]),
  };
  QueryStats aggregate;
  auto results = system.QueryBatch(hums, 1, 2, &aggregate);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_EQ(results[0].size(), 1u);
  EXPECT_EQ(results[0][0].id, 7);
  EXPECT_TRUE(results[1].empty());
  ASSERT_EQ(results[2].size(), 1u);
  EXPECT_EQ(results[2][0].id, 9);
  EXPECT_TRUE(aggregate.rejected);
}

// --- Durability: WAL + checkpoint + recovery ---------------------------------

TEST(RecoveryTest, OpenReplaysLoggedMutations) {
  FaultInjectingEnv env;
  const std::string path = TempPath("recovery_replay.db");
  CleanDb(&env, path);
  auto corpus = SmallCorpus(25);
  Melody extra = SmallCorpus(1, 321)[0];
  extra.name = "logged insert";

  QbhSystem live = BuildSystem(corpus);
  ASSERT_TRUE(live.Attach(path, &env).ok());
  EXPECT_TRUE(live.durable());
  ASSERT_TRUE(live.Insert(extra).ok());
  ASSERT_TRUE(live.Remove(3).ok());
  // No Checkpoint: everything past Attach lives only in the log.

  RecoveryStats rs;
  auto reopened = QbhSystem::Open(path, &env, &rs);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(rs.records_replayed, 2u);
  EXPECT_EQ(rs.records_skipped, 0u);
  EXPECT_FALSE(rs.torn_tail);
  EXPECT_EQ(reopened.value().size(), 25u);
  EXPECT_FALSE(reopened.value().melody(3).has_value());
  EXPECT_EQ(reopened.value().melody(25)->name, "logged insert");
  ExpectSameAnswers(live, reopened.value(), {corpus[0], corpus[3], extra});
}

TEST(RecoveryTest, CheckpointTruncatesLogAndPreservesState) {
  FaultInjectingEnv env;
  const std::string path = TempPath("recovery_checkpoint.db");
  CleanDb(&env, path);
  auto corpus = SmallCorpus(25);

  QbhSystem live = BuildSystem(corpus);
  ASSERT_TRUE(live.Attach(path, &env).ok());
  ASSERT_TRUE(live.Insert(SmallCorpus(1, 5)[0]).ok());
  ASSERT_TRUE(live.Remove(7).ok());
  ASSERT_TRUE(live.Checkpoint().ok());

  WalReadResult rr;
  ASSERT_TRUE(
      WriteAheadLog::ReadAll(QbhSystem::WalPathFor(path), &env, &rr).ok());
  EXPECT_TRUE(rr.payloads.empty());  // checkpoint truncated the log

  RecoveryStats rs;
  auto reopened = QbhSystem::Open(path, &env, &rs);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(rs.records_replayed, 0u);
  EXPECT_EQ(reopened.value().size(), 25u);
  EXPECT_EQ(reopened.value().next_id(), 26);
  EXPECT_FALSE(reopened.value().melody(7).has_value());
  ExpectSameAnswers(live, reopened.value(), {corpus[0], corpus[24]});
}

// DESIGN.md §11: a checkpoint carries the engine's LB_Triangle reference
// series, and Open must prune with exactly the saved set — not a re-selected
// one — so answers and pruning behavior are reproducible across restarts.
TEST(RecoveryTest, CheckpointRoundTripsTriangleReferences) {
  FaultInjectingEnv env;
  const std::string path = TempPath("recovery_pivots.db");
  CleanDb(&env, path);
  auto corpus = SmallCorpus(25);

  QbhSystem live = BuildSystem(corpus);
  std::vector<Series> refs = live.References();
  ASSERT_FALSE(refs.empty());  // auto-selected at Build
  ASSERT_TRUE(live.Attach(path, &env).ok());

  auto reopened = QbhSystem::Open(path, &env);
  ASSERT_TRUE(reopened.ok());
  std::vector<Series> reopened_refs = reopened.value().References();
  ASSERT_EQ(reopened_refs.size(), refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    ASSERT_EQ(reopened_refs[i].size(), refs[i].size());
    for (std::size_t j = 0; j < refs[i].size(); ++j) {
      EXPECT_EQ(reopened_refs[i][j], refs[i][j]) << "ref " << i << "[" << j
                                                 << "]";
    }
  }
  ExpectSameAnswers(live, reopened.value(), {corpus[0], corpus[12]});

  // Salvage keeps a healthy pivot block too.
  std::string text;
  ASSERT_TRUE(env.ReadFile(path, &text).ok());
  SalvageReport report;
  auto salvaged = ParseQbhDatabaseSalvage(text, &report);
  ASSERT_TRUE(salvaged.ok());
  EXPECT_TRUE(report.crc_ok);
  EXPECT_EQ(salvaged.value().References().size(), refs.size());
}

// Insert/Remove/WAL-replay must keep the reference-point stages exact: a
// recovered system (checkpoint references + replayed mutations, pivot rows
// recomputed during replay) answers bit-identically to the live mutated
// system and to a fresh build of the same final corpus.
TEST(RecoveryTest, WalReplayKeepsTrianglePruningExact) {
  FaultInjectingEnv env;
  const std::string path = TempPath("recovery_pivot_replay.db");
  CleanDb(&env, path);
  auto corpus = SmallCorpus(25);
  auto extras = SmallCorpus(6, 432);

  QbhSystem live = BuildSystem(corpus);
  ASSERT_TRUE(live.Attach(path, &env).ok());
  for (const Melody& m : extras) ASSERT_TRUE(live.Insert(m).ok());
  ASSERT_TRUE(live.Remove(2).ok());
  ASSERT_TRUE(live.Remove(27).ok());
  // No Checkpoint: the inserts and removes live only in the log, so the
  // reopened system must rebuild their pivot rows during replay.

  auto reopened = QbhSystem::Open(path, &env);
  ASSERT_TRUE(reopened.ok());
  ASSERT_FALSE(reopened.value().References().empty());
  ExpectSameAnswers(live, reopened.value(),
                    {corpus[0], corpus[2], extras[0], extras[5]});

  // And both agree with a from-scratch build of the final corpus (which
  // re-selects its own references — the answers must not care).
  std::vector<Melody> final_corpus;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (i != 2) final_corpus.push_back(corpus[i]);
  }
  for (std::size_t i = 0; i < extras.size(); ++i) {
    if (i != 27 - 25) final_corpus.push_back(extras[i]);
  }
  QbhSystem fresh = BuildSystem(final_corpus);
  Hummer hummer(HummerProfile::Good(), 99);
  for (const Melody& target : {corpus[0], extras[0]}) {
    Series hum = hummer.Hum(target);
    auto ra = reopened.value().Query(hum, 5);
    auto rb = fresh.Query(hum, 5);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].name, rb[i].name);
      EXPECT_EQ(ra[i].distance, rb[i].distance);
    }
  }
}

TEST(RecoveryTest, TornAppendRecoversPreRecordState) {
  // Crash the append at every prefix length of the frame. Recovery must see
  // exactly the pre-record corpus (record torn) or the post-record corpus
  // (record complete on disk): never anything in between, never a crash.
  auto corpus = SmallCorpus(15);
  Melody extra = SmallCorpus(1, 654)[0];
  extra.name = "maybe lost";

  // The exact bytes the WAL will try to append.
  WalMutation mut;
  mut.kind = WalMutation::Kind::kInsert;
  mut.id = 15;
  mut.melody = extra;
  const std::size_t frame_size =
      WriteAheadLog::FrameRecord(EncodeWalMutation(mut)).size();

  std::vector<std::size_t> torn_points = {0,
                                          1,
                                          5,
                                          21,
                                          22,
                                          frame_size / 2,
                                          frame_size - 1,
                                          frame_size};
  for (std::size_t torn : torn_points) {
    SCOPED_TRACE("torn_bytes=" + std::to_string(torn));
    FaultInjectingEnv env;
    const std::string path = TempPath("recovery_torn.db");
    CleanDb(&env, path);
    QbhSystem live = BuildSystem(corpus);
    ASSERT_TRUE(live.Attach(path, &env).ok());
    env.CrashNextAppendAt(torn);
    auto id = live.Insert(extra);
    ASSERT_FALSE(id.ok());  // the "process" died mid-append

    RecoveryStats rs;
    auto reopened = QbhSystem::Open(path, &env, &rs);
    ASSERT_TRUE(reopened.ok());
    if (torn >= frame_size) {
      // The record landed whole before the crash: post-record state.
      EXPECT_EQ(reopened.value().size(), 16u);
      EXPECT_EQ(reopened.value().melody(15)->name, "maybe lost");
      EXPECT_EQ(rs.records_replayed, 1u);
    } else {
      // Torn: pre-record state, tail dropped and reported.
      EXPECT_EQ(reopened.value().size(), 15u);
      EXPECT_FALSE(reopened.value().melody(15).has_value());
      EXPECT_EQ(rs.records_replayed, 0u);
      EXPECT_EQ(rs.torn_tail, torn > 0);
    }
    // Either way the reopened system serves and mutates normally.
    ASSERT_TRUE(reopened.value().Insert(SmallCorpus(1, 99)[0]).ok());
  }
}

TEST(RecoveryTest, CrashAtEveryCheckpointStepIsRecoverable) {
  // Crash AtomicWriteFile at each pipeline step during Checkpoint, plus the
  // delete between the rename and the truncation. Every debris state must
  // reopen to exactly the pre-checkpoint logical corpus.
  auto corpus = SmallCorpus(15);
  for (int step = -1; step < FaultInjectingEnv::kWriteStepCount; ++step) {
    SCOPED_TRACE("step=" + std::to_string(step));
    FaultInjectingEnv env;
    const std::string path = TempPath("recovery_ckpt_crash.db");
    CleanDb(&env, path);
    QbhSystem live = BuildSystem(corpus);
    ASSERT_TRUE(live.Attach(path, &env).ok());
    Melody extra = SmallCorpus(1, 42)[0];
    extra.name = "pre-checkpoint insert";
    ASSERT_TRUE(live.Insert(extra).ok());
    ASSERT_TRUE(live.Remove(2).ok());

    if (step < 0) {
      // Crash between the checkpoint rename and the log truncation: the new
      // checkpoint already contains the logged mutations, and the stale log
      // must be recognized and skipped, not replayed twice.
      env.FailNextDelete();
      EXPECT_FALSE(live.Checkpoint().ok());
    } else {
      env.CrashNextWriteAt(static_cast<FaultInjectingEnv::WriteStep>(step),
                           step == 1 ? 40 : 0);
      EXPECT_FALSE(live.Checkpoint().ok());
    }

    RecoveryStats rs;
    auto reopened = QbhSystem::Open(path, &env, &rs);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.value().size(), 15u);
    EXPECT_FALSE(reopened.value().melody(2).has_value());
    EXPECT_EQ(reopened.value().melody(15)->name, "pre-checkpoint insert");
    if (step < 0) {
      EXPECT_EQ(rs.records_replayed, 0u);
      EXPECT_EQ(rs.records_skipped, 2u);
    } else {
      EXPECT_EQ(rs.records_replayed, 2u);
    }
    ExpectSameAnswers(live, reopened.value(), {corpus[1], corpus[2], extra});
  }
}

TEST(RecoveryTest, TornTailIsRepairedSoNewAppendsAreReachable) {
  FaultInjectingEnv env;
  const std::string path = TempPath("recovery_repair.db");
  CleanDb(&env, path);
  auto corpus = SmallCorpus(12);
  QbhSystem live = BuildSystem(corpus);
  ASSERT_TRUE(live.Attach(path, &env).ok());
  ASSERT_TRUE(live.Insert(SmallCorpus(1, 1)[0]).ok());
  env.CrashNextAppendAt(9);
  ASSERT_FALSE(live.Insert(SmallCorpus(1, 2)[0]).ok());

  RecoveryStats rs;
  auto reopened = QbhSystem::Open(path, &env, &rs);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(rs.torn_tail);
  EXPECT_EQ(rs.dropped_bytes, 9u);
  EXPECT_EQ(reopened.value().size(), 13u);

  // The repaired log accepts appends that a second recovery can reach.
  Melody after = SmallCorpus(1, 3)[0];
  after.name = "post-repair";
  ASSERT_TRUE(reopened.value().Insert(after).ok());
  auto again = QbhSystem::Open(path, &env);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().size(), 14u);
  ASSERT_TRUE(again.value().melody(13).has_value());
  EXPECT_EQ(again.value().melody(13)->name, "post-repair");
}

TEST(RecoveryTest, CorruptMutationPayloadStopsReplayCleanly) {
  FaultInjectingEnv env;
  const std::string path = TempPath("recovery_bad_payload.db");
  CleanDb(&env, path);
  auto corpus = SmallCorpus(12);
  QbhSystem live = BuildSystem(corpus);
  ASSERT_TRUE(live.Attach(path, &env).ok());
  ASSERT_TRUE(live.Insert(SmallCorpus(1, 9)[0]).ok());

  // Append a well-framed record whose payload is not a valid mutation, then
  // a valid one behind it: replay must stop at the bad record and drop both.
  auto wal = WriteAheadLog::Open(QbhSystem::WalPathFor(path), &env);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append("upsert 13\ngarbage\n").ok());
  WalMutation valid;
  valid.kind = WalMutation::Kind::kRemove;
  valid.id = 0;
  ASSERT_TRUE(wal.value()->Append(EncodeWalMutation(valid)).ok());

  RecoveryStats rs;
  auto reopened = QbhSystem::Open(path, &env, &rs);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(rs.records_replayed, 1u);  // the real insert
  EXPECT_TRUE(rs.torn_tail);
  EXPECT_GT(rs.dropped_bytes, 0u);
  EXPECT_EQ(reopened.value().size(), 13u);
  ASSERT_TRUE(reopened.value().melody(0).has_value());  // remove was dropped
}

TEST(RecoveryTest, CheckpointPersistsGappedIdSpace) {
  FaultInjectingEnv env;
  const std::string path = TempPath("recovery_gapped.db");
  CleanDb(&env, path);
  auto corpus = SmallCorpus(10);
  QbhSystem live = BuildSystem(corpus);
  // Tombstones at both ends: id 0 and the highest ids.
  ASSERT_TRUE(live.Remove(0).ok());
  ASSERT_TRUE(live.Remove(8).ok());
  ASSERT_TRUE(live.Remove(9).ok());
  ASSERT_TRUE(live.Attach(path, &env).ok());
  ASSERT_TRUE(live.Checkpoint().ok());

  auto reopened = QbhSystem::Open(path, &env);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().size(), 7u);
  EXPECT_EQ(reopened.value().next_id(), 10);  // trailing tombstones kept
  EXPECT_FALSE(reopened.value().melody(0).has_value());
  EXPECT_FALSE(reopened.value().melody(9).has_value());
  ASSERT_TRUE(reopened.value().melody(5).has_value());
  ExpectSameAnswers(live, reopened.value(), {corpus[5], corpus[0]});
  // A new insert continues the id sequence instead of reusing 8 or 9.
  auto id = reopened.value().Insert(SmallCorpus(1, 31)[0]);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 10);
}

TEST(RecoveryTest, FailedWalAppendLeavesMemoryAndDiskConsistent) {
  FaultInjectingEnv env;
  const std::string path = TempPath("recovery_failed_append.db");
  CleanDb(&env, path);
  auto corpus = SmallCorpus(10);
  QbhSystem live = BuildSystem(corpus);
  ASSERT_TRUE(live.Attach(path, &env).ok());

  env.FailNextSync();
  EXPECT_FALSE(live.Remove(4).ok());
  // Log-before-apply: the in-memory state did not change either, so memory
  // and disk agree that melody 4 still exists.
  ASSERT_TRUE(live.melody(4).has_value());
  EXPECT_EQ(live.size(), 10u);
  auto reopened = QbhSystem::Open(path, &env);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE(reopened.value().melody(4).has_value());

  // The poisoned log refuses further mutations until a checkpoint resets it.
  EXPECT_FALSE(live.Remove(4).ok());
  ASSERT_TRUE(live.Checkpoint().ok());
  EXPECT_TRUE(live.Remove(4).ok());
}

// --- Writer/reader concurrency (TSan target) ---------------------------------

TEST(ConcurrentWriterTest, QueriesStayExactDuringInserts) {
  auto corpus = SmallCorpus(40);
  QbhSystem system = BuildSystem(corpus);
  Hummer hummer(HummerProfile::Perfect(), 11);
  std::vector<Series> hums;
  std::vector<std::int64_t> targets = {0, 7, 19, 33};
  for (std::int64_t t : targets) {
    hums.push_back(hummer.Hum(corpus[static_cast<std::size_t>(t)]));
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t seed = 1000;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(system.Insert(SmallCorpus(1, seed++)[0]).ok());
    }
  });

  ThreadPool pool(3);
  for (int round = 0; round < 30; ++round) {
    auto results = system.QueryBatch(hums, 1, pool);
    ASSERT_EQ(results.size(), hums.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      // A perfect hum of an original melody keeps finding it regardless of
      // how many melodies the writer has raced in.
      ASSERT_EQ(results[i].size(), 1u);
      EXPECT_EQ(results[i][0].id, targets[i]);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GT(system.size(), 40u);
}

TEST(ConcurrentWriterTest, InsertsRemovesAndReadsRaceCleanly) {
  auto corpus = SmallCorpus(30);
  QbhSystem system = BuildSystem(corpus);
  Hummer hummer(HummerProfile::Good(), 13);
  Series hum = hummer.Hum(corpus[5]);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t seed = 500;
    std::vector<std::int64_t> mine;
    while (!stop.load(std::memory_order_relaxed)) {
      auto id = system.Insert(SmallCorpus(1, seed++)[0]);
      ASSERT_TRUE(id.ok());
      mine.push_back(id.value());
      if (mine.size() > 3) {
        ASSERT_TRUE(system.Remove(mine.front()).ok());
        mine.erase(mine.begin());
      }
    }
  });

  std::thread reader([&] {
    for (int i = 0; i < 200; ++i) {
      auto matches = system.Query(hum, 3);
      ASSERT_FALSE(matches.empty());
      // Accessors racing the writer must stay consistent, never abort.
      (void)system.size();
      (void)system.melody(system.next_id() - 1);
      (void)system.RankOf(hum, 5);
    }
  });

  reader.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(ConcurrentWriterTest, DurableWriterRacesReaders) {
  FaultInjectingEnv env;
  const std::string path = TempPath("concurrent_durable.db");
  CleanDb(&env, path);
  auto corpus = SmallCorpus(20);
  QbhSystem system = BuildSystem(corpus);
  ASSERT_TRUE(system.Attach(path, &env).ok());
  Hummer hummer(HummerProfile::Perfect(), 17);
  Series hum = hummer.Hum(corpus[3]);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t seed = 9000;
    int ops = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(system.Insert(SmallCorpus(1, seed++)[0]).ok());
      if (++ops % 8 == 0) ASSERT_TRUE(system.Checkpoint().ok());
    }
  });
  for (int i = 0; i < 100; ++i) {
    auto matches = system.Query(hum, 1);
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0].id, 3);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  // What the racing writer persisted reopens to exactly the live state.
  RecoveryStats rs;
  auto reopened = QbhSystem::Open(path, &env, &rs);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().size(), system.size());
  ExpectSameAnswers(system, reopened.value(), {corpus[3], corpus[19]});
}

// --- Sharded crash matrix ----------------------------------------------------
//
// Each shard of a sharded engine crashes at a *different* WAL/checkpoint
// step, and the recovered engine's merged answers must match a never-crashed
// single-engine oracle that applied exactly the acknowledged mutations.

TEST(ShardRecoveryTest, EachShardCrashesAtADifferentStepAndRecoversMerged) {
  FaultInjectingEnv env(Env::Default());
  const std::string dir = ::testing::TempDir() + "shard_matrix";
  ::mkdir(dir.c_str(), 0755);
  constexpr std::size_t kShards = 3;
  for (std::size_t s = 0; s < kShards; ++s) {
    CleanDb(Env::Default(), serve::ShardedEngine::ShardPath(dir, s));
  }

  auto corpus = SmallCorpus(18);
  QbhSystem oracle = BuildSystem(corpus);  // never crashes, never durable
  serve::ShardedOptions opts;
  opts.num_shards = kShards;
  auto created = serve::ShardedEngine::Create(corpus, opts);
  ASSERT_TRUE(created.ok());
  {
    auto& engine = *created.value();
    ASSERT_TRUE(engine.AttachAll(dir, &env).ok());

    // Round one: acknowledged inserts on every shard, checkpointed.
    auto extra = SmallCorpus(6, 300);
    for (Melody& m : extra) {
      auto id = engine.Insert(m);
      ASSERT_TRUE(id.ok());
      ASSERT_TRUE(oracle.Insert(std::move(m)).ok());
    }
    ASSERT_TRUE(engine.CheckpointAll().ok());

    // Shard 0 (next insert routes there: 24 % 3 == 0) crashes mid WAL
    // append: torn tail, mutation not acknowledged, so the oracle does not
    // apply it either. A clean checkpoint then restores its writability so
    // the next acknowledged inserts stay dense (ids equal on both sides).
    env.CrashNextAppendAt(4);
    EXPECT_FALSE(engine.Insert(SmallCorpus(1, 301)[0]).ok());
    env.ClearFaults();
    ASSERT_TRUE(engine.CheckpointAll().ok());

    // Acknowledged inserts land in every shard's WAL (ids 24..27 -> shards
    // 0,1,2,0); the crashes below hit only checkpoint rewrites, which must
    // never lose acknowledged data.
    auto more = SmallCorpus(4, 302);
    for (Melody& m : more) {
      auto id = engine.Insert(m);
      ASSERT_TRUE(id.ok());
      ASSERT_TRUE(oracle.Insert(std::move(m)).ok());
    }

    // CheckpointAll visits shards in order and skips quarantined ones, so
    // quarantining the earlier shards aims each armed crash at a specific
    // later shard: shard 1 dies mid checkpoint body, shard 2 at the rename.
    // Their on-disk files (stale checkpoint + intact WAL, plus whatever the
    // crash tore) are exactly what a killed process leaves behind.
    engine.QuarantineShard(0);
    env.CrashNextWriteAt(FaultInjectingEnv::WriteStep::kWriteBody, 7);
    EXPECT_FALSE(engine.CheckpointAll().ok());  // shard 1 crashes
    env.ClearFaults();
    engine.QuarantineShard(1);
    env.CrashNextWriteAt(FaultInjectingEnv::WriteStep::kRename, 0);
    EXPECT_FALSE(engine.CheckpointAll().ok());  // shard 2 crashes
    env.ClearFaults();
  }  // drop the engine: a process kill with torn files left behind

  // Recovery: every shard comes back from whatever mix of stale checkpoint,
  // torn temp file, and WAL tail its crash left, and the merged answers are
  // bit-identical to the oracle that saw only acknowledged mutations.
  std::vector<RecoveryStats> recovery;
  auto reopened = serve::ShardedEngine::Open(dir, opts, &env, &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& engine = *reopened.value();
  EXPECT_EQ(engine.serving_shards(), kShards);
  EXPECT_EQ(engine.size(), oracle.size());
  EXPECT_EQ(engine.next_id(), oracle.next_id());

  Hummer hummer(HummerProfile::Good(), 99);
  for (const Melody& target : {corpus[2], corpus[7], corpus[11], corpus[16]}) {
    Series hum = hummer.Hum(target);
    QueryStats stats;
    auto got = engine.Query(hum, 5, QueryOptions(), &stats);
    auto want = oracle.Query(hum, 5);
    EXPECT_FALSE(stats.partial);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
      EXPECT_EQ(got[i].name, want[i].name);
      EXPECT_EQ(got[i].distance, want[i].distance);
    }
  }
}

TEST(ShardRecoveryTest, CrashAtEveryWalStepOnEveryShardStaysConsistent) {
  // The full matrix: for each shard index and each append tear length, crash
  // one shard's WAL there, recover the whole engine, and check the merged
  // answer against the oracle of acknowledged mutations.
  constexpr std::size_t kShards = 2;
  for (std::size_t victim = 0; victim < kShards; ++victim) {
    for (std::size_t torn : {0u, 1u, 8u}) {
      FaultInjectingEnv env(Env::Default());
      const std::string dir = ::testing::TempDir() + "shard_matrix2";
      ::mkdir(dir.c_str(), 0755);
      for (std::size_t s = 0; s < kShards; ++s) {
        CleanDb(Env::Default(), serve::ShardedEngine::ShardPath(dir, s));
      }
      auto corpus = SmallCorpus(10);
      QbhSystem oracle = BuildSystem(corpus);
      serve::ShardedOptions opts;
      opts.num_shards = kShards;
      auto created = serve::ShardedEngine::Create(corpus, opts);
      ASSERT_TRUE(created.ok());
      {
        auto& engine = *created.value();
        ASSERT_TRUE(engine.AttachAll(dir, &env).ok());
        // Walk the insert frontier to the victim shard, then tear its WAL.
        auto filler = SmallCorpus(4, 400 + victim);
        std::size_t i = 0;
        while (engine.next_id() % kShards != static_cast<std::int64_t>(victim)) {
          ASSERT_LT(i, filler.size());
          ASSERT_TRUE(engine.Insert(filler[i]).ok());
          ASSERT_TRUE(oracle.Insert(std::move(filler[i])).ok());
          ++i;
        }
        env.CrashNextAppendAt(torn);
        EXPECT_FALSE(engine.Insert(SmallCorpus(1, 500)[0]).ok());
        env.ClearFaults();
      }
      std::vector<RecoveryStats> recovery;
      auto reopened = serve::ShardedEngine::Open(dir, opts, &env, &recovery);
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      EXPECT_EQ(reopened.value()->size(), oracle.size());
      Series hum = Hummer(HummerProfile::Good(), 17).Hum(corpus[3]);
      auto got = reopened.value()->Query(hum, 4);
      auto want = oracle.Query(hum, 4);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t k = 0; k < got.size(); ++k) {
        EXPECT_EQ(got[k].id, want[k].id);
        EXPECT_EQ(got[k].distance, want[k].distance);
      }
    }
  }
}

}  // namespace
}  // namespace humdex
