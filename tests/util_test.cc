#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "util/crc32c.h"
#include "util/matrix.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"

namespace humdex {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllCodesStringify) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NOT_FOUND: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OUT_OF_RANGE: x");
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(), "FAILED_PRECONDITION: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "INTERNAL: x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double v = r.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng r(9);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::uint32_t v = r.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int v = r.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng r(13);
  RunningStats st;
  for (int i = 0; i < 50000; ++i) st.Add(r.Gaussian());
  EXPECT_NEAR(st.mean(), 0.0, 0.02);
  EXPECT_NEAR(st.stddev(), 1.0, 0.02);
}

TEST(RngTest, GaussianWithParams) {
  Rng r(17);
  RunningStats st;
  for (int i = 0; i < 50000; ++i) st.Add(r.Gaussian(5.0, 2.0));
  EXPECT_NEAR(st.mean(), 5.0, 0.05);
  EXPECT_NEAR(st.stddev(), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng r(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += r.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork(1);
  Rng child2 = parent.Fork(1);
  // Same salt at a different parent state gives a different stream.
  EXPECT_NE(child.NextU32(), child2.NextU32());
}

TEST(RngTest, ShufflePermutes) {
  Rng r(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  r.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RunningStatsTest, Basics) {
  RunningStats st;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.Add(v);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
  EXPECT_NEAR(st.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_EQ(st.mean(), 0.0);
  EXPECT_EQ(st.variance(), 0.0);
  st.Add(3.0);
  EXPECT_EQ(st.variance(), 0.0);
  EXPECT_EQ(st.mean(), 3.0);
}

TEST(StatsTest, MeanAndStddev) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(Stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Stddev({1.0}), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v{4, 1, 3, 2};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 2.5);
  EXPECT_DOUBLE_EQ(Median(v), 2.5);
}

TEST(MatrixTest, MultiplyIdentity) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  Matrix i3 = Matrix::Identity(3);
  Matrix prod = a.Multiply(i3);
  EXPECT_EQ(Matrix::MaxAbsDiff(a, prod), 0.0);
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a(3, 2);
  int k = 0;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) a(r, c) = ++k;
  }
  Matrix att = a.Transposed().Transposed();
  EXPECT_EQ(Matrix::MaxAbsDiff(a, att), 0.0);
  EXPECT_EQ(a.Transposed().rows(), 2u);
  EXPECT_EQ(a.Transposed().cols(), 3u);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 0;
  a(0, 2) = -1;
  a(1, 0) = 2;
  a(1, 1) = 2;
  a(1, 2) = 2;
  std::vector<double> v{3, 4, 5};
  auto out = a.MultiplyVector(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], -2.0);
  EXPECT_DOUBLE_EQ(out[1], 24.0);
}

// Bit-at-a-time CRC32C, independent of the slice-by-8 / SSE4.2 / 3-lane
// implementations under test — slow but trivially auditable.
std::uint32_t ReferenceCrc32c(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~0u;
  for (std::size_t i = 0; i < n; ++i) {
    crc ^= p[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
  }
  return ~crc;
}

TEST(Crc32cTest, Rfc3720KnownVectors) {
  // Test vectors from RFC 3720 appendix B.4 (iSCSI CRC32C).
  EXPECT_EQ(Crc32c(""), 0u);
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  const std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
  std::string ascending(32, '\0');
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<char>(i);
  EXPECT_EQ(Crc32c(ascending), 0x46DD794Eu);
}

TEST(Crc32cTest, ExtendSplitsAnywhere) {
  Rng rng(4242);
  std::string buf(257, '\0');
  for (char& c : buf) c = static_cast<char>(rng.NextBounded(256));
  const std::uint32_t whole = Crc32c(buf);
  for (std::size_t split = 0; split <= buf.size(); ++split) {
    std::uint32_t crc = Crc32cExtend(0, buf.data(), split);
    crc = Crc32cExtend(crc, buf.data() + split, buf.size() - split);
    ASSERT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, AlignmentInvariant) {
  Rng rng(777);
  std::vector<unsigned char> storage(4096 + 16);
  for (auto& b : storage) b = static_cast<unsigned char>(rng.NextBounded(256));
  // The same byte sequence must hash identically from any start alignment
  // (the hardware path peels to 8-byte alignment before its wide loop).
  std::vector<unsigned char> copy(storage.begin(), storage.begin() + 4096);
  const std::uint32_t want = Crc32cExtend(0, copy.data(), copy.size());
  for (std::size_t off = 1; off < 16; ++off) {
    std::memmove(storage.data() + off, copy.data(), copy.size());
    EXPECT_EQ(Crc32cExtend(0, storage.data() + off, copy.size()), want)
        << "offset " << off;
  }
}

TEST(Crc32cTest, LargeBufferMatchesReferenceAndChunking) {
  // Large enough to engage the interleaved 3-lane hardware path (3 x 4KB
  // blocks) several times over, plus unaligned head and tail remainders.
  Rng rng(31337);
  std::string buf(64 * 1024 + 37, '\0');
  for (char& c : buf) c = static_cast<char>(rng.NextBounded(256));
  const std::uint32_t whole = Crc32c(buf);
  EXPECT_EQ(whole, ReferenceCrc32c(buf.data(), buf.size()));
  // Incremental extension over odd-sized chunks must agree with one shot.
  std::uint32_t crc = 0;
  std::size_t pos = 0;
  std::size_t step = 1;
  while (pos < buf.size()) {
    const std::size_t take = std::min(step, buf.size() - pos);
    crc = Crc32cExtend(crc, buf.data() + pos, take);
    pos += take;
    step = step * 3 + 1;  // 1, 4, 13, 40, ... crosses lane boundaries oddly
  }
  EXPECT_EQ(crc, whole);
}

}  // namespace
}  // namespace humdex
