// WriteAheadLog unit tests: frame/scan round trips, torn and corrupt tails,
// injected append/sync/delete faults, poisoning, and the mutation codec.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "qbh/wal.h"
#include "util/env.h"

namespace humdex {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

Melody TwoNoteMelody(const std::string& name) {
  Melody m;
  m.name = name;
  m.notes = {{60.0, 1.0}, {62.5, 0.5}};
  return m;
}

void RemoveIfPresent(Env* env, const std::string& path) {
  if (env->Exists(path)) {
    Status st = env->Delete(path);
    (void)st;
  }
}

TEST(WalTest, AppendThenReadAllRoundTrips) {
  const std::string path = TempPath("wal_roundtrip.wal");
  RemoveIfPresent(Env::Default(), path);
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append("alpha").ok());
  ASSERT_TRUE(wal.value()->Append("").ok());  // empty payloads are legal
  ASSERT_TRUE(wal.value()->Append("gamma\nwith\nnewlines").ok());
  EXPECT_EQ(wal.value()->records_appended(), 3u);

  WalReadResult rr;
  ASSERT_TRUE(WriteAheadLog::ReadAll(path, nullptr, &rr).ok());
  ASSERT_EQ(rr.payloads.size(), 3u);
  EXPECT_EQ(rr.payloads[0], "alpha");
  EXPECT_EQ(rr.payloads[1], "");
  EXPECT_EQ(rr.payloads[2], "gamma\nwith\nnewlines");
  EXPECT_FALSE(rr.torn_tail);
  EXPECT_EQ(rr.dropped_bytes, 0u);
}

TEST(WalTest, MissingFileIsEmptyLog) {
  WalReadResult rr;
  ASSERT_TRUE(
      WriteAheadLog::ReadAll(TempPath("wal_never_created.wal"), nullptr, &rr)
          .ok());
  EXPECT_TRUE(rr.payloads.empty());
  EXPECT_FALSE(rr.torn_tail);
}

TEST(WalTest, TornTailStopsScanAtLastWholeRecord) {
  std::string bytes = WriteAheadLog::FrameRecord("first") +
                      WriteAheadLog::FrameRecord("second");
  const std::size_t whole = bytes.size();
  bytes += WriteAheadLog::FrameRecord("third").substr(0, 10);  // torn append
  WalReadResult rr;
  WriteAheadLog::ParseRecords(bytes, &rr);
  ASSERT_EQ(rr.payloads.size(), 2u);
  EXPECT_EQ(rr.valid_bytes, whole);
  EXPECT_EQ(rr.dropped_bytes, bytes.size() - whole);
  EXPECT_TRUE(rr.torn_tail);
}

TEST(WalTest, BitFlipInPayloadDropsRecordAndTail) {
  std::string bytes = WriteAheadLog::FrameRecord("first") +
                      WriteAheadLog::FrameRecord("second") +
                      WriteAheadLog::FrameRecord("third");
  // Flip one payload byte of the second record.
  const std::size_t second_payload =
      WriteAheadLog::FrameRecord("first").size() + 22;
  bytes[second_payload] ^= 0x40;
  WalReadResult rr;
  WriteAheadLog::ParseRecords(bytes, &rr);
  ASSERT_EQ(rr.payloads.size(), 1u);
  EXPECT_EQ(rr.payloads[0], "first");
  EXPECT_TRUE(rr.torn_tail);  // second *and* third are unreachable
}

TEST(WalTest, BitFlipInHeaderDropsTail) {
  std::string bytes =
      WriteAheadLog::FrameRecord("only") + WriteAheadLog::FrameRecord("more");
  bytes[1] = 'x';  // "rxc ..." is not a record header
  WalReadResult rr;
  WriteAheadLog::ParseRecords(bytes, &rr);
  EXPECT_TRUE(rr.payloads.empty());
  EXPECT_EQ(rr.valid_bytes, 0u);
  EXPECT_TRUE(rr.torn_tail);
}

TEST(WalTest, CrashedAppendLeavesTornPrefixAndPoisonsLog) {
  FaultInjectingEnv env;
  const std::string path = TempPath("wal_crash_append.wal");
  RemoveIfPresent(&env, path);
  auto wal = WriteAheadLog::Open(path, &env);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append("durable-record").ok());

  env.CrashNextAppendAt(7);  // only 7 bytes of the frame hit the disk
  EXPECT_FALSE(wal.value()->Append("lost-record").ok());
  EXPECT_FALSE(wal.value()->healthy());
  // Poisoned: later appends must fail too, or they would land behind the
  // torn bytes where recovery can never reach them.
  EXPECT_FALSE(wal.value()->Append("after-crash").ok());

  WalReadResult rr;
  ASSERT_TRUE(WriteAheadLog::ReadAll(path, &env, &rr).ok());
  ASSERT_EQ(rr.payloads.size(), 1u);
  EXPECT_EQ(rr.payloads[0], "durable-record");
  EXPECT_TRUE(rr.torn_tail);
  EXPECT_EQ(rr.dropped_bytes, 7u);
}

TEST(WalTest, FailedSyncPoisonsLog) {
  FaultInjectingEnv env;
  const std::string path = TempPath("wal_failed_sync.wal");
  RemoveIfPresent(&env, path);
  auto wal = WriteAheadLog::Open(path, &env);
  ASSERT_TRUE(wal.ok());
  env.FailNextSync();
  EXPECT_FALSE(wal.value()->Append("unacknowledged").ok());
  EXPECT_FALSE(wal.value()->healthy());
}

TEST(WalTest, TruncateDropsRecordsAndClearsPoison) {
  FaultInjectingEnv env;
  const std::string path = TempPath("wal_truncate.wal");
  RemoveIfPresent(&env, path);
  auto wal = WriteAheadLog::Open(path, &env);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append("one").ok());
  env.CrashNextAppendAt(3);
  EXPECT_FALSE(wal.value()->Append("two").ok());
  ASSERT_FALSE(wal.value()->healthy());

  ASSERT_TRUE(wal.value()->Truncate().ok());
  EXPECT_TRUE(wal.value()->healthy());
  ASSERT_TRUE(wal.value()->Append("fresh").ok());

  WalReadResult rr;
  ASSERT_TRUE(WriteAheadLog::ReadAll(path, &env, &rr).ok());
  ASSERT_EQ(rr.payloads.size(), 1u);
  EXPECT_EQ(rr.payloads[0], "fresh");
  EXPECT_FALSE(rr.torn_tail);
}

TEST(WalTest, TruncateSurvivesFailedDelete) {
  FaultInjectingEnv env;
  const std::string path = TempPath("wal_failed_delete.wal");
  RemoveIfPresent(&env, path);
  auto wal = WriteAheadLog::Open(path, &env);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append("kept").ok());
  env.FailNextDelete();
  EXPECT_FALSE(wal.value()->Truncate().ok());
  // The records are still there and still well-formed.
  WalReadResult rr;
  ASSERT_TRUE(WriteAheadLog::ReadAll(path, &env, &rr).ok());
  ASSERT_EQ(rr.payloads.size(), 1u);
  EXPECT_EQ(rr.payloads[0], "kept");
}

TEST(WalTest, MutationCodecRoundTrips) {
  WalMutation insert;
  insert.kind = WalMutation::Kind::kInsert;
  insert.id = 42;
  insert.melody = TwoNoteMelody("codec melody");
  WalMutation decoded;
  ASSERT_TRUE(DecodeWalMutation(EncodeWalMutation(insert), &decoded).ok());
  EXPECT_EQ(decoded.kind, WalMutation::Kind::kInsert);
  EXPECT_EQ(decoded.id, 42);
  EXPECT_EQ(decoded.melody.name, insert.melody.name);
  ASSERT_EQ(decoded.melody.notes.size(), 2u);
  EXPECT_DOUBLE_EQ(decoded.melody.notes[1].pitch, 62.5);

  WalMutation remove;
  remove.kind = WalMutation::Kind::kRemove;
  remove.id = 7;
  ASSERT_TRUE(DecodeWalMutation(EncodeWalMutation(remove), &decoded).ok());
  EXPECT_EQ(decoded.kind, WalMutation::Kind::kRemove);
  EXPECT_EQ(decoded.id, 7);
}

TEST(WalTest, MutationDecodeRejectsMalformedPayloads) {
  WalMutation out;
  EXPECT_FALSE(DecodeWalMutation("", &out).ok());
  EXPECT_FALSE(DecodeWalMutation("insert", &out).ok());
  EXPECT_FALSE(DecodeWalMutation("insert 0\n", &out).ok());  // no melody
  EXPECT_FALSE(DecodeWalMutation("insert -3\nmelody x\n", &out).ok());
  EXPECT_FALSE(DecodeWalMutation("remove 1\nextra bytes", &out).ok());
  EXPECT_FALSE(DecodeWalMutation("upsert 1\n", &out).ok());
  EXPECT_FALSE(DecodeWalMutation("remove 99999999999999999999\n", &out).ok());
}

}  // namespace
}  // namespace humdex
