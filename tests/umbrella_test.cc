// Compile-and-link check for the umbrella header: every public type is
// reachable through one include and the layers compose.
#include "humdex.h"

#include <gtest/gtest.h>

namespace humdex {
namespace {

TEST(UmbrellaTest, EndToEndThroughSingleInclude) {
  SongGenerator gen(1);
  QbhSystem system;
  for (Melody& m : gen.GeneratePhrases(30)) system.AddMelody(std::move(m));
  system.Build();

  Hummer hummer(HummerProfile::Perfect(), 2);
  Series hum = hummer.Hum(*system.melody(12));
  Series pcm = SynthesizeHum(hum);
  auto matches = system.QueryAudio(pcm, SynthOptions().sample_rate, 1);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].id, 12);
}

TEST(UmbrellaTest, EveryLayerNameResolves) {
  // One token per layer, to catch accidental header removal.
  EXPECT_TRUE(IsPowerOfTwo(64));                          // util
  EXPECT_EQ(BandRadiusForWidth(0.1, 128), 6u);            // ts
  EXPECT_EQ(PaaTransform(8, 2).output_dim(), 2u);         // transform
  EXPECT_EQ(RStarTree(2).size(), 0u);                     // index
  EXPECT_EQ(WarpingBand::Itakura(16).rows(), 16u);        // ts/band
  EXPECT_EQ(ContourLetter(3.0), 'U');                     // music
  EXPECT_NEAR(MidiToHz(69), 440.0, 1e-9);                 // audio
}

}  // namespace
}  // namespace humdex
