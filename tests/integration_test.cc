// End-to-end integration of every subsystem: song generation -> segmentation
// -> melody database -> envelope-transform index -> hummed queries, checked
// against brute-force ground truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gemini/query_engine.h"
#include "music/hummer.h"
#include "music/pitch_tracker.h"
#include "music/segmenter.h"
#include "music/song_generator.h"
#include "qbh/contour_system.h"
#include "qbh/qbh_system.h"
#include "ts/normal_form.h"

namespace humdex {
namespace {

TEST(IntegrationTest, FullPaperPipelineSongToQuery) {
  // 10 songs -> phrases -> QBH database.
  SongGenerator gen(2024);
  std::vector<Melody> phrases;
  for (int s = 0; s < 10; ++s) {
    auto segs = SegmentMelody(gen.GenerateSong(s));
    phrases.insert(phrases.end(), segs.begin(), segs.end());
  }
  ASSERT_GT(phrases.size(), 50u);

  QbhSystem system;
  for (const Melody& m : phrases) system.AddMelody(m);
  system.Build();

  // Hum a phrase through the full noisy channel: hummer + pitch tracker.
  Hummer hummer(HummerProfile::Good(), 7);
  PitchTrackerOptions topt;
  PitchTracker tracker(topt, 11);
  int top3 = 0;
  const int queries = 10;
  for (int q = 0; q < queries; ++q) {
    std::size_t target = (q * 7) % phrases.size();
    Series hum = tracker.Track(hummer.Hum(phrases[target]));
    std::size_t rank = system.RankOf(hum, static_cast<std::int64_t>(target));
    if (rank <= 3) ++top3;
  }
  EXPECT_GE(top3, queries / 2);
}

TEST(IntegrationTest, IndexPipelineNeverMissesAHummedTarget) {
  // No-false-negative guarantee, exercised through the hum channel: if the
  // target's exact DTW distance is within epsilon, a range query must return
  // it, for every scheme.
  SongGenerator gen(77);
  auto phrases = gen.GeneratePhrases(150);
  const std::size_t n = 128;

  std::vector<Series> normals;
  for (const Melody& m : phrases) {
    normals.push_back(NormalForm(MelodyToSeries(m, 8.0), n));
  }

  for (SchemeKind kind : {SchemeKind::kNewPaa, SchemeKind::kKeoghPaa,
                          SchemeKind::kDft, SchemeKind::kDwt, SchemeKind::kSvd}) {
    QbhOptions opt;
    opt.scheme = kind;
    QbhSystem system(opt);
    for (const Melody& m : phrases) system.AddMelody(m);
    system.Build();

    Hummer hummer(HummerProfile::Good(), 13);
    for (int q = 0; q < 6; ++q) {
      std::size_t target = static_cast<std::size_t>(q) * 20;
      Series hum = hummer.Hum(phrases[target]);
      auto matches = system.Query(hum, 5);
      ASSERT_FALSE(matches.empty());
      bool found = false;
      for (const auto& m : matches) found |= (m.id == static_cast<std::int64_t>(target));
      // The target must appear unless 5 other melodies are genuinely closer
      // (verified by brute force below).
      Series qnf = system.HumToNormalForm(hum);
      std::size_t closer = 0;
      std::size_t band = BandRadiusForWidth(opt.warping_width, n);
      double dtarget = LdtwDistance(qnf, normals[target], band);
      for (std::size_t i = 0; i < normals.size(); ++i) {
        if (i != target && LdtwDistance(qnf, normals[i], band) < dtarget) ++closer;
      }
      if (closer < 5) {
        EXPECT_TRUE(found) << "scheme lost the target melody";
      }
    }
  }
}

TEST(IntegrationTest, TimeSeriesBeatsContourOnNoisyHums) {
  // Table 2's qualitative claim as an invariant: over a batch of noisy hums,
  // the DTW system achieves at least as many top-1 hits as the contour
  // baseline.
  SongGenerator gen(555);
  auto phrases = gen.GeneratePhrases(200);
  QbhSystem dtw_system;
  ContourSystem contour_system;
  for (const Melody& m : phrases) {
    dtw_system.AddMelody(m);
    contour_system.AddMelody(m);
  }
  dtw_system.Build();

  int dtw_top1 = 0, contour_top1 = 0;
  const int queries = 15;
  for (int q = 0; q < queries; ++q) {
    std::size_t target = static_cast<std::size_t>(q) * 13;
    Hummer hummer(HummerProfile::Good(), 900 + static_cast<std::uint64_t>(q));
    Series hum = hummer.Hum(phrases[target]);
    if (dtw_system.RankOf(hum, static_cast<std::int64_t>(target)) == 1) ++dtw_top1;
    if (contour_system.RankOf(hum, static_cast<std::int64_t>(target)) == 1) {
      ++contour_top1;
    }
  }
  EXPECT_GE(dtw_top1, contour_top1);
  EXPECT_GE(dtw_top1, queries / 2);
}

TEST(IntegrationTest, ScalableEngineAgreesWithSmallEngine) {
  // The engine's answers are independent of index kind and fanout options.
  SongGenerator gen(999);
  auto phrases = gen.GeneratePhrases(300);
  Hummer hummer(HummerProfile::Good(), 17);
  Series hum = hummer.Hum(phrases[123]);

  std::vector<std::vector<std::int64_t>> results;
  for (IndexKind kind : {IndexKind::kRStarTree, IndexKind::kGridFile,
                         IndexKind::kLinearScan}) {
    QbhOptions opt;
    opt.index = kind;
    QbhSystem system(opt);
    for (const Melody& m : phrases) system.AddMelody(m);
    system.Build();
    auto matches = system.Query(hum, 10);
    std::vector<std::int64_t> ids;
    for (const auto& m : matches) ids.push_back(m.id);
    results.push_back(ids);
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

}  // namespace
}  // namespace humdex
