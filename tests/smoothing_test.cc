#include <gtest/gtest.h>

#include <cmath>

#include "ts/smoothing.h"
#include "util/random.h"

namespace humdex {
namespace {

TEST(MovingAverageTest, IdentityForZeroHalf) {
  Series x{1, 2, 3};
  EXPECT_EQ(MovingAverage(x, 0), x);
}

TEST(MovingAverageTest, KnownValues) {
  Series x{1, 2, 3, 4, 5};
  Series out = MovingAverage(x, 1);
  EXPECT_DOUBLE_EQ(out[0], 1.5);  // clipped window {1,2}
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
  EXPECT_DOUBLE_EQ(out[4], 4.5);
}

TEST(MovingAverageTest, PreservesConstantSeries) {
  Series x(20, 7.0);
  for (std::size_t half : {1u, 3u, 10u, 100u}) {
    Series out = MovingAverage(x, half);
    for (double v : out) EXPECT_DOUBLE_EQ(v, 7.0);
  }
}

TEST(MovingAverageTest, ReducesVariance) {
  Rng rng(3);
  Series x(200);
  for (double& v : x) v = rng.Gaussian();
  auto variance = [](const Series& s) {
    double m = SeriesMean(s), v = 0.0;
    for (double e : s) v += (e - m) * (e - m);
    return v / static_cast<double>(s.size());
  };
  EXPECT_LT(variance(MovingAverage(x, 3)), variance(x));
}

TEST(ExponentialSmoothTest, AlphaOneIsIdentity) {
  Series x{3, 1, 4, 1, 5};
  EXPECT_EQ(ExponentialSmooth(x, 1.0), x);
}

TEST(ExponentialSmoothTest, ConvergesToConstant) {
  Series x(100, 2.0);
  x[0] = 10.0;
  Series out = ExponentialSmooth(x, 0.5);
  EXPECT_NEAR(out.back(), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(out[0], 10.0);
}

TEST(ZNormalizeTest, UnitVarianceZeroMean) {
  Rng rng(7);
  Series x(64);
  for (double& v : x) v = rng.Uniform(10, 20);
  Series z = ZNormalize(x);
  EXPECT_NEAR(SeriesMean(z), 0.0, 1e-10);
  double var = 0.0;
  for (double v : z) var += v * v;
  EXPECT_NEAR(var / 64.0, 1.0, 1e-10);
}

TEST(ZNormalizeTest, AffineInvariance) {
  Rng rng(9);
  Series x(32);
  for (double& v : x) v = rng.Gaussian();
  Series scaled = x;
  for (double& v : scaled) v = 3.5 * v - 12.0;
  Series zx = ZNormalize(x), zs = ZNormalize(scaled);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(zx[i], zs[i], 1e-9);
}

TEST(ZNormalizeTest, ConstantSeriesToZeros) {
  Series x(10, 42.0);
  Series z = ZNormalize(x);
  for (double v : z) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(DifferenceTest, IntervalsOfAMelodyLine) {
  Series x{60, 62, 62, 59};
  Series d = Difference(x);
  Series expect{2, 0, -3};
  EXPECT_EQ(d, expect);
}

TEST(DifferenceTest, ShiftInvariance) {
  Series x{1, 4, 2, 8};
  Series shifted = x;
  for (double& v : shifted) v += 100.0;
  EXPECT_EQ(Difference(x), Difference(shifted));
}

TEST(DifferenceTest, ShortInputs) {
  EXPECT_TRUE(Difference({}).empty());
  EXPECT_TRUE(Difference({1.0}).empty());
}

}  // namespace
}  // namespace humdex
