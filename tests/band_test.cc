#include <gtest/gtest.h>

#include <cmath>

#include "transform/feature_scheme.h"
#include "ts/band.h"
#include "ts/dtw.h"
#include "util/random.h"

namespace humdex {
namespace {

Series RandomWalk(Rng* rng, std::size_t n) {
  Series x(n);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v += rng->Gaussian();
    x[i] = v;
  }
  return x;
}

TEST(WarpingBandTest, SakoeChibaMatchesDefinition) {
  WarpingBand band = WarpingBand::SakoeChiba(10, 10, 2);
  ASSERT_TRUE(band.Valid());
  EXPECT_EQ(band.lo[0], 0u);
  EXPECT_EQ(band.hi[0], 2u);
  EXPECT_EQ(band.lo[5], 3u);
  EXPECT_EQ(band.hi[5], 7u);
  EXPECT_EQ(band.hi[9], 9u);
}

TEST(WarpingBandTest, ItakuraValidAndPinched) {
  for (std::size_t n : {8u, 64u, 129u}) {
    WarpingBand band = WarpingBand::Itakura(n, 2.0);
    ASSERT_TRUE(band.Valid()) << "n=" << n;
    // Pinched at the ends, widest near the middle.
    EXPECT_EQ(band.lo[0], 0u);
    EXPECT_EQ(band.hi[n - 1], n - 1);
    if (n >= 16) {
      std::size_t mid_width = band.hi[n / 2] - band.lo[n / 2];
      std::size_t edge_width = band.hi[1] - band.lo[1];
      EXPECT_GT(mid_width, edge_width);
    }
  }
}

TEST(BandedDtwTest, SakoeChibaEqualsLdtw) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    std::size_t n = static_cast<std::size_t>(rng.UniformInt(4, 40));
    std::size_t k = static_cast<std::size_t>(rng.UniformInt(0, 8));
    Series x = RandomWalk(&rng, n), y = RandomWalk(&rng, n);
    WarpingBand band = WarpingBand::SakoeChiba(n, n, k);
    EXPECT_NEAR(BandedDtwDistance(x, y, band), LdtwDistance(x, y, k), 1e-9);
  }
}

TEST(BandedDtwTest, FullWidthBandEqualsUnconstrainedDtw) {
  Rng rng(5);
  Series x = RandomWalk(&rng, 20), y = RandomWalk(&rng, 20);
  WarpingBand band = WarpingBand::SakoeChiba(20, 20, 20);
  EXPECT_NEAR(BandedDtwDistance(x, y, band), DtwDistance(x, y), 1e-9);
}

TEST(BandedDtwTest, ItakuraBetweenEuclideanAndFullDtw) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    Series x = RandomWalk(&rng, 32), y = RandomWalk(&rng, 32);
    double d = BandedDtwDistance(x, y, WarpingBand::Itakura(32));
    EXPECT_GE(d, DtwDistance(x, y) - 1e-9);
    EXPECT_LE(d, EuclideanDistance(x, y) + 1e-9);
  }
}

TEST(BandEnvelopeTest, SakoeChibaEqualsKEnvelope) {
  Rng rng(9);
  Series y = RandomWalk(&rng, 50);
  for (std::size_t k : {0u, 2u, 7u}) {
    Envelope a = BandEnvelope(y, WarpingBand::SakoeChiba(50, 50, k));
    Envelope b = BuildEnvelope(y, k);
    EXPECT_EQ(a.lower, b.lower);
    EXPECT_EQ(a.upper, b.upper);
  }
}

TEST(BandEnvelopeTest, Lemma2GeneralizesToAnyBand) {
  // D(x, BandEnvelope(y, B)) <= BandedDtw(x, y, B) for Itakura bands.
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    Series x = RandomWalk(&rng, 48), y = RandomWalk(&rng, 48);
    WarpingBand band = WarpingBand::Itakura(48);
    double lb = DistanceToEnvelope(x, BandEnvelope(y, band));
    EXPECT_LE(lb, BandedDtwDistance(x, y, band) + 1e-9);
  }
}

TEST(BandEnvelopeTest, Theorem1HoldsForItakuraThroughEveryScheme) {
  // The container-invariant transforms compose with any band envelope: the
  // full index pipeline works unchanged under the Itakura constraint.
  Rng rng(13);
  const std::size_t n = 64;
  std::vector<Series> corpus;
  for (int i = 0; i < 30; ++i) corpus.push_back(RandomWalk(&rng, n));
  std::vector<std::shared_ptr<FeatureScheme>> schemes = {
      MakeNewPaaScheme(n, 8), MakeKeoghPaaScheme(n, 8), MakeDftScheme(n, 8),
      MakeDwtScheme(n, 8), MakeSvdScheme(corpus, 8)};
  WarpingBand band = WarpingBand::Itakura(n);
  for (int trial = 0; trial < 20; ++trial) {
    Series x = RandomWalk(&rng, n), y = RandomWalk(&rng, n);
    double dtw = BandedDtwDistance(x, y, band);
    Envelope env = BandEnvelope(y, band);
    for (const auto& scheme : schemes) {
      double lb = DistanceToEnvelope(scheme->Features(x),
                                     scheme->ReduceEnvelope(env));
      EXPECT_LE(lb, dtw + 1e-9) << scheme->name();
    }
  }
}

TEST(BandedDtwTest, TighterBandNeverSmaller) {
  // Itakura(slope 1.5) constrains more than Itakura(slope 3): distance is
  // monotone in band inclusion.
  Rng rng(15);
  for (int trial = 0; trial < 20; ++trial) {
    Series x = RandomWalk(&rng, 40), y = RandomWalk(&rng, 40);
    double tight = BandedDtwDistance(x, y, WarpingBand::Itakura(40, 1.5));
    double loose = BandedDtwDistance(x, y, WarpingBand::Itakura(40, 3.0));
    EXPECT_GE(tight, loose - 1e-9);
  }
}

}  // namespace
}  // namespace humdex
