#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gemini/query_engine.h"
#include "ts/dtw.h"
#include "util/random.h"

namespace humdex {
namespace {

Series RandomWalk(Rng* rng, std::size_t n) {
  Series x(n);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v += rng->Gaussian();
    x[i] = v;
  }
  return x;
}

struct EngineCase {
  const char* name;
  std::shared_ptr<FeatureScheme> (*make)(const std::vector<Series>& corpus);
  IndexKind index;
};

std::shared_ptr<FeatureScheme> NewPaa(const std::vector<Series>&) {
  return MakeNewPaaScheme(128, 8);
}
std::shared_ptr<FeatureScheme> KeoghPaa(const std::vector<Series>&) {
  return MakeKeoghPaaScheme(128, 8);
}
std::shared_ptr<FeatureScheme> Dft(const std::vector<Series>&) {
  return MakeDftScheme(128, 8);
}
std::shared_ptr<FeatureScheme> Svd(const std::vector<Series>& corpus) {
  return MakeSvdScheme(corpus, 8);
}

class QueryEngineSchemeTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(QueryEngineSchemeTest, RangeQueryExactVsBruteForce) {
  Rng rng(42);
  std::vector<Series> corpus;
  for (int i = 0; i < 300; ++i) corpus.push_back(RandomWalk(&rng, 128));

  QueryEngineOptions opts;
  opts.normal_len = 128;
  opts.warping_width = 0.1;
  opts.index.kind = GetParam().index;
  DtwQueryEngine engine(GetParam().make(corpus), opts);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    engine.Add(corpus[i], static_cast<std::int64_t>(i));
  }
  const std::size_t k = engine.band_radius();

  for (int q = 0; q < 10; ++q) {
    Series query = RandomWalk(&rng, 128);
    double eps = rng.Uniform(2.0, 15.0);
    QueryStats stats;
    auto got = engine.RangeQuery(query, eps, &stats);

    // Brute force ground truth.
    std::set<std::int64_t> expect;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      if (LdtwDistance(query, corpus[i], k) <= eps) {
        expect.insert(static_cast<std::int64_t>(i));
      }
    }
    std::set<std::int64_t> got_ids;
    for (const Neighbor& n : got) got_ids.insert(n.id);
    EXPECT_EQ(got_ids, expect) << GetParam().name;

    // Filter cascade sanity: results <= lb survivors <= index candidates.
    EXPECT_LE(stats.results, stats.lb_survivors);
    EXPECT_LE(stats.lb_survivors, stats.index_candidates);
    EXPECT_EQ(stats.results, got.size());

    // Distances are exact and ascending.
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance, LdtwDistance(query, corpus[static_cast<std::size_t>(got[i].id)], k), 1e-9);
      if (i > 0) {
        EXPECT_GE(got[i].distance, got[i - 1].distance);
      }
    }
  }
}

TEST_P(QueryEngineSchemeTest, KnnQueryExactVsBruteForce) {
  Rng rng(77);
  std::vector<Series> corpus;
  for (int i = 0; i < 250; ++i) corpus.push_back(RandomWalk(&rng, 128));

  QueryEngineOptions opts;
  opts.normal_len = 128;
  opts.warping_width = 0.1;
  opts.index.kind = GetParam().index;
  DtwQueryEngine engine(GetParam().make(corpus), opts);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    engine.Add(corpus[i], static_cast<std::int64_t>(i));
  }
  const std::size_t band = engine.band_radius();

  for (int q = 0; q < 8; ++q) {
    Series query = RandomWalk(&rng, 128);
    for (std::size_t k : {1u, 5u, 10u}) {
      auto got = engine.KnnQuery(query, k);
      ASSERT_EQ(got.size(), k);

      std::vector<double> all;
      for (const Series& s : corpus) all.push_back(LdtwDistance(query, s, band));
      std::sort(all.begin(), all.end());
      for (std::size_t i = 0; i < k; ++i) {
        EXPECT_NEAR(got[i].distance, all[i], 1e-9) << GetParam().name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, QueryEngineSchemeTest,
    ::testing::Values(EngineCase{"new_paa_rstar", NewPaa, IndexKind::kRStarTree},
                      EngineCase{"keogh_paa_rstar", KeoghPaa, IndexKind::kRStarTree},
                      EngineCase{"dft_rstar", Dft, IndexKind::kRStarTree},
                      EngineCase{"svd_rstar", Svd, IndexKind::kRStarTree},
                      EngineCase{"new_paa_grid", NewPaa, IndexKind::kGridFile},
                      EngineCase{"new_paa_linear", NewPaa, IndexKind::kLinearScan}),
    [](const ::testing::TestParamInfo<EngineCase>& info) { return info.param.name; });

TEST(QueryEngineTest, NewPaaRetrievesFewerCandidatesThanKeogh) {
  Rng rng(5);
  std::vector<Series> corpus;
  for (int i = 0; i < 800; ++i) corpus.push_back(RandomWalk(&rng, 128));

  QueryEngineOptions opts;
  opts.normal_len = 128;
  opts.warping_width = 0.1;
  DtwQueryEngine new_engine(MakeNewPaaScheme(128, 8), opts);
  DtwQueryEngine keogh_engine(MakeKeoghPaaScheme(128, 8), opts);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    new_engine.Add(corpus[i], static_cast<std::int64_t>(i));
    keogh_engine.Add(corpus[i], static_cast<std::int64_t>(i));
  }
  std::size_t new_total = 0, keogh_total = 0;
  for (int q = 0; q < 20; ++q) {
    Series query = RandomWalk(&rng, 128);
    QueryStats ns, ks;
    new_engine.RangeQuery(query, 8.0, &ns);
    keogh_engine.RangeQuery(query, 8.0, &ks);
    new_total += ns.index_candidates;
    keogh_total += ks.index_candidates;
    // Identical final results regardless of scheme.
    EXPECT_EQ(ns.results, ks.results);
  }
  EXPECT_LT(new_total, keogh_total);
}

TEST(QueryEngineTest, RankOfSelfQueryIsOne) {
  Rng rng(9);
  std::vector<Series> corpus;
  for (int i = 0; i < 100; ++i) corpus.push_back(RandomWalk(&rng, 128));
  QueryEngineOptions opts;
  DtwQueryEngine engine(MakeNewPaaScheme(128, 8), opts);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    engine.Add(corpus[i], static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(engine.RankOf(corpus[17], 17), 1u);
  EXPECT_DOUBLE_EQ(engine.ExactDistance(corpus[17], 17), 0.0);
}

TEST(QueryEngineTest, EmptyAndZeroKQueries) {
  QueryEngineOptions opts;
  DtwQueryEngine engine(MakeNewPaaScheme(128, 8), opts);
  Series q(128, 0.0);
  EXPECT_TRUE(engine.KnnQuery(q, 5).empty());
  engine.Add(Series(128, 1.0), 0);
  EXPECT_TRUE(engine.KnnQuery(q, 0).empty());
}

TEST(QueryEngineTest, StatsPageAccessesPositive) {
  Rng rng(11);
  QueryEngineOptions opts;
  DtwQueryEngine engine(MakeNewPaaScheme(128, 8), opts);
  for (int i = 0; i < 200; ++i) {
    engine.Add(RandomWalk(&rng, 128), i);
  }
  QueryStats stats;
  engine.RangeQuery(RandomWalk(&rng, 128), 5.0, &stats);
  EXPECT_GE(stats.page_accesses, 1u);
}

}  // namespace
}  // namespace humdex
