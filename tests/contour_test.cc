#include <gtest/gtest.h>

#include "music/contour.h"
#include "music/hummer.h"
#include "util/random.h"

namespace humdex {
namespace {

TEST(ContourLetterTest, AlphabetThresholds) {
  EXPECT_EQ(ContourLetter(0.0), 'S');
  EXPECT_EQ(ContourLetter(0.4), 'S');
  EXPECT_EQ(ContourLetter(-0.4), 'S');
  EXPECT_EQ(ContourLetter(1.0), 'u');
  EXPECT_EQ(ContourLetter(-2.0), 'd');
  EXPECT_EQ(ContourLetter(3.0), 'U');
  EXPECT_EQ(ContourLetter(-12.0), 'D');
}

TEST(ContourOfTest, MelodyGroundTruth) {
  Melody m;
  m.notes = {{60, 1}, {62, 1}, {62, 1}, {67, 1}, {60, 1}};
  EXPECT_EQ(ContourOf(m), "uSUD");
}

TEST(ContourOfTest, ShortInputs) {
  EXPECT_EQ(ContourOf(std::vector<Note>{}), "");
  EXPECT_EQ(ContourOf(std::vector<Note>{{60, 1}}), "");
}

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "ab"), 2u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("uudd", "uudd"), 0u);
  EXPECT_EQ(EditDistance("uudd", "uuds"), 1u);
}

TEST(EditDistanceTest, MetricProperties) {
  Rng rng(3);
  const char alphabet[] = "UuSdD";
  auto random_string = [&](std::size_t len) {
    std::string s;
    for (std::size_t i = 0; i < len; ++i) {
      s.push_back(alphabet[rng.UniformInt(0, 4)]);
    }
    return s;
  };
  for (int trial = 0; trial < 30; ++trial) {
    std::string a = random_string(static_cast<std::size_t>(rng.UniformInt(0, 12)));
    std::string b = random_string(static_cast<std::size_t>(rng.UniformInt(0, 12)));
    std::string c = random_string(static_cast<std::size_t>(rng.UniformInt(0, 12)));
    EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
    EXPECT_EQ(EditDistance(a, a), 0u);
    EXPECT_LE(EditDistance(a, c), EditDistance(a, b) + EditDistance(b, c));
  }
}

TEST(QGramTest, SharedCounts) {
  EXPECT_EQ(SharedQGrams("uuddu", "uuddu", 2), 4u);
  EXPECT_EQ(SharedQGrams("uudd", "dduu", 2), 2u);  // "uu" and "dd"
  EXPECT_EQ(SharedQGrams("ab", "cd", 2), 0u);
  EXPECT_EQ(SharedQGrams("a", "abc", 2), 0u);  // too short
}

TEST(QGramTest, FilterIsSoundForEditDistance) {
  // Necessary condition: ed(a,b) <= e  =>  shared >= max(|a|,|b|) - q + 1 - qe.
  Rng rng(7);
  const char alphabet[] = "UuSdD";
  auto random_string = [&](std::size_t len) {
    std::string s;
    for (std::size_t i = 0; i < len; ++i) {
      s.push_back(alphabet[rng.UniformInt(0, 4)]);
    }
    return s;
  };
  const std::size_t q = 3;
  for (int trial = 0; trial < 100; ++trial) {
    std::string a = random_string(static_cast<std::size_t>(rng.UniformInt(3, 20)));
    std::string b = random_string(static_cast<std::size_t>(rng.UniformInt(3, 20)));
    std::size_t e = EditDistance(a, b);
    std::ptrdiff_t required =
        static_cast<std::ptrdiff_t>(std::max(a.size(), b.size())) -
        static_cast<std::ptrdiff_t>(q) + 1 - static_cast<std::ptrdiff_t>(q * e);
    if (required > 0) {
      EXPECT_GE(SharedQGrams(a, b, q), static_cast<std::size_t>(required))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(SegmentNotesTest, CleanStepsRecovered) {
  // 60 x50 frames, 64 x50, 62 x50: clean plateaus segment exactly.
  Series pitch;
  for (double p : {60.0, 64.0, 62.0}) {
    for (int i = 0; i < 50; ++i) pitch.push_back(p);
  }
  auto notes = SegmentNotes(pitch);
  ASSERT_EQ(notes.size(), 3u);
  EXPECT_NEAR(notes[0].pitch, 60.0, 0.01);
  EXPECT_NEAR(notes[1].pitch, 64.0, 0.01);
  EXPECT_NEAR(notes[2].pitch, 62.0, 0.01);
  EXPECT_NEAR(notes[0].duration, 0.5, 0.05);  // 50 frames at 100 fps
}

TEST(SegmentNotesTest, RepeatedPitchMerges) {
  // Two consecutive notes at the same pitch are indistinguishable without
  // articulation — the fundamental contour-method weakness.
  Series pitch;
  for (int i = 0; i < 100; ++i) pitch.push_back(60.0);
  auto notes = SegmentNotes(pitch);
  EXPECT_EQ(notes.size(), 1u);
}

TEST(SegmentNotesTest, SmallIntervalsMerge) {
  // A 0.4-semitone step is below the threshold: merged (segmentation error).
  Series pitch;
  for (int i = 0; i < 50; ++i) pitch.push_back(60.0);
  for (int i = 0; i < 50; ++i) pitch.push_back(60.4);
  auto notes = SegmentNotes(pitch);
  EXPECT_EQ(notes.size(), 1u);
}

TEST(SegmentNotesTest, TransientSpikesDoNotSplit) {
  Series pitch(100, 60.0);
  pitch[50] = 63.0;  // 1-frame spike < change_confirm_frames
  auto notes = SegmentNotes(pitch);
  EXPECT_EQ(notes.size(), 1u);
}

TEST(SegmentNotesTest, EmptyAndTinyInputs) {
  EXPECT_TRUE(SegmentNotes({}).empty());
  EXPECT_TRUE(SegmentNotes({60.0, 60.0}).empty());  // below min_note_frames
}

TEST(SegmentNotesTest, NoisyHumProducesImperfectContour) {
  // The paper's core observation: segmentation of a real (noisy) hum rarely
  // recovers the true contour. Hum a melody with a Good profile and check
  // the extracted contour differs from ground truth at least sometimes.
  Melody m;
  m.notes = {{60, 1}, {62, 1}, {64, 1}, {60, 1}, {65, 1},
             {64, 1}, {62, 1}, {60, 1}, {67, 1}, {64, 1}};
  std::string truth = ContourOf(m);
  int exact = 0;
  for (int i = 0; i < 20; ++i) {
    Hummer hummer(HummerProfile::Poor(), 500 + static_cast<std::uint64_t>(i));
    auto notes = SegmentNotes(hummer.Hum(m));
    if (ContourOf(notes) == truth) ++exact;
  }
  EXPECT_LT(exact, 20);
}

}  // namespace
}  // namespace humdex
