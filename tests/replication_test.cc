// Replica groups: bit-exactness with any R-1 replicas of each group dead,
// write fan-out with divergence quarantine, read failover and hedged
// routing, snapshot shipping (durable and in-memory), anti-entropy digests,
// and the replicated durable open/repair lifecycle.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "music/hummer.h"
#include "music/song_generator.h"
#include "serve/sharded_engine.h"
#include "util/env.h"

namespace humdex {
namespace serve {
namespace {

std::vector<Melody> Corpus(std::size_t count, std::uint64_t seed = 1) {
  SongGenerator gen(seed);
  return gen.GeneratePhrases(count);
}

QbhSystem SingleEngine(const std::vector<Melody>& corpus,
                       QbhOptions opt = QbhOptions()) {
  QbhSystem system(opt);
  for (const Melody& m : corpus) system.AddMelody(m);
  system.Build();
  return system;
}

std::unique_ptr<ShardedEngine> Replicated(
    const std::vector<Melody>& corpus, std::size_t shards,
    std::size_t replicas, ShardedOptions opts = ShardedOptions()) {
  opts.num_shards = shards;
  opts.replication = replicas;
  auto r = ShardedEngine::Create(corpus, std::move(opts));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

std::vector<Series> HumPanel(const std::vector<Melody>& corpus,
                             std::size_t count) {
  Hummer hummer(HummerProfile::Good(), 99);
  std::vector<Series> hums;
  for (std::size_t i = 0; i < count; ++i) {
    hums.push_back(hummer.Hum(corpus[(i * 7) % corpus.size()]));
  }
  return hums;
}

void ExpectSameMatches(const std::vector<QbhMatch>& a,
                       const std::vector<QbhMatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].distance, b[i].distance);  // bit-identical
  }
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + name;
  ::mkdir(dir.c_str(), 0755);
  Env* env = Env::Default();
  for (std::size_t s = 0; s < 8; ++s) {
    for (std::size_t r = 0; r < 4; ++r) {
      const std::string p = ShardedEngine::ReplicaPath(dir, s, r);
      for (const std::string& f : {p, QbhSystem::WalPathFor(p)}) {
        if (env->Exists(f)) {
          Status st = env->Delete(f);
          (void)st;
        }
      }
    }
  }
  return dir;
}

/// Every group's serving replicas must agree on the anti-entropy digest.
void ExpectGroupsDigestIdentical(const ShardedEngine& engine) {
  for (std::size_t s = 0; s < engine.num_shards(); ++s) {
    std::vector<std::uint32_t> digests;
    for (std::size_t r = 0; r < engine.replication(); ++r) {
      auto d = engine.ReplicaDigest(s, r);
      if (d.ok()) digests.push_back(d.value());
    }
    ASSERT_FALSE(digests.empty()) << "shard " << s << " has no serving replica";
    for (std::uint32_t d : digests) {
      EXPECT_EQ(d, digests[0]) << "shard " << s << " replicas diverge";
    }
  }
}

// --- Healthy path -----------------------------------------------------------

TEST(ReplicationTest, ReplicatedAnswersAreBitIdenticalToSingleEngine) {
  auto corpus = Corpus(36);
  QbhSystem single = SingleEngine(corpus);
  for (std::size_t replicas : {2u, 3u}) {
    auto engine = Replicated(corpus, 3, replicas);
    for (const Series& hum : HumPanel(corpus, 5)) {
      QueryStats stats;
      ExpectSameMatches(engine->Query(hum, 5, QueryOptions(), &stats),
                        single.Query(hum, 5));
      EXPECT_FALSE(stats.partial);
      EXPECT_EQ(stats.shards_failed, 0u);
    }
    ExpectGroupsDigestIdentical(*engine);
  }
}

TEST(ReplicationTest, GroupStatusRollsUpReplicas) {
  auto corpus = Corpus(24);
  auto engine = Replicated(corpus, 3, 2);
  ShardStatus st = engine->shard_status(0);
  EXPECT_EQ(st.replicas, 2u);
  EXPECT_EQ(st.serving_replicas, 2u);
  EXPECT_EQ(st.health, ShardHealth::kHealthy);

  engine->QuarantineReplica(0, 0);
  st = engine->shard_status(0);
  EXPECT_EQ(st.serving_replicas, 1u);
  EXPECT_EQ(st.health, ShardHealth::kHealthy);  // the survivor is healthy
  EXPECT_EQ(engine->serving_shards(), 3u);      // the group still serves

  const ShardStatus rs = engine->replica_status(0, 0);
  EXPECT_EQ(rs.health, ShardHealth::kQuarantined);
  EXPECT_EQ(engine->replica_status(0, 1).health, ShardHealth::kHealthy);
}

// --- Read failover ----------------------------------------------------------

TEST(ReplicationTest, AnyRMinusOneReplicasDeadStaysExactAndComplete) {
  auto corpus = Corpus(36);
  QbhSystem single = SingleEngine(corpus);
  const std::size_t replicas = 3;
  auto engine = Replicated(corpus, 3, replicas);

  // Kill a different R-1 subset in every group: only replica (s % R)
  // survives shard s.
  for (std::size_t s = 0; s < engine->num_shards(); ++s) {
    for (std::size_t r = 0; r < replicas; ++r) {
      if (r != s % replicas) engine->QuarantineReplica(s, r);
    }
    EXPECT_EQ(engine->shard_status(s).serving_replicas, 1u);
  }
  EXPECT_EQ(engine->serving_shards(), engine->num_shards());

  for (const Series& hum : HumPanel(corpus, 6)) {
    QueryStats stats;
    ExpectSameMatches(engine->Query(hum, 5, QueryOptions(), &stats),
                      single.Query(hum, 5));
    EXPECT_FALSE(stats.partial);
    EXPECT_EQ(stats.shards_failed, 0u);
  }
}

TEST(ReplicationTest, WholeGroupDownIsPartialAndExactOverTheRest) {
  auto corpus = Corpus(30);
  QbhSystem single = SingleEngine(corpus);
  auto engine = Replicated(corpus, 3, 2);
  engine->QuarantineShard(1);  // every replica of the group

  for (const Series& hum : HumPanel(corpus, 4)) {
    QueryStats stats;
    auto got = engine->Query(hum, 5, QueryOptions(), &stats);
    EXPECT_TRUE(stats.partial);
    EXPECT_EQ(stats.shards_failed, 1u);
    // Exact over the serving groups: the single-engine answer with shard 1's
    // melodies removed.
    auto oracle = single.Query(hum, 5 + corpus.size() / 3 + 1);
    std::vector<QbhMatch> expected;
    for (const QbhMatch& m : oracle) {
      if (m.id % 3 != 1) expected.push_back(m);
    }
    if (expected.size() > 5) expected.resize(5);
    ExpectSameMatches(got, expected);
  }
}

TEST(ReplicationTest, HedgedRetryFailsOverToAPeerReplica) {
  auto corpus = Corpus(24);
  QbhSystem single = SingleEngine(corpus);
  ShardedOptions opts;
  opts.attempts_per_shard = 2;
  // Every group's first attempt "hangs"; the retry must land on a peer.
  opts.fail_attempt_hook = [](std::size_t, int attempt) {
    return attempt == 0;
  };
  auto engine = Replicated(corpus, 3, 2, opts);

  for (const Series& hum : HumPanel(corpus, 4)) {
    QueryStats stats;
    ExpectSameMatches(engine->Query(hum, 5, QueryOptions(), &stats),
                      single.Query(hum, 5));
    EXPECT_FALSE(stats.partial);
    // Each of the 3 groups answered on its second attempt, served by the
    // other replica.
    EXPECT_EQ(stats.failovers, 3u);
  }
}

TEST(ReplicationTest, UnreplicatedEngineNeverCountsFailovers) {
  auto corpus = Corpus(24);
  ShardedOptions opts;
  opts.attempts_per_shard = 2;
  opts.fail_attempt_hook = [](std::size_t, int attempt) {
    return attempt == 0;
  };
  auto engine = Replicated(corpus, 3, 1, opts);
  QueryStats stats;
  (void)engine->Query(HumPanel(corpus, 1)[0], 5, QueryOptions(), &stats);
  EXPECT_EQ(stats.failovers, 0u);  // retried on the same lone replica
}

// --- Write fan-out ----------------------------------------------------------

TEST(ReplicationTest, MutationsApplyToEveryReplicaAndStayDigestIdentical) {
  auto corpus = Corpus(24, 3);
  auto extra = Corpus(9, 77);
  QbhSystem single = SingleEngine(corpus);
  auto engine = Replicated(corpus, 3, 2);

  for (Melody m : extra) {
    auto single_id = single.Insert(m);
    ASSERT_TRUE(single_id.ok());
    auto sharded_id = engine->Insert(std::move(m));
    ASSERT_TRUE(sharded_id.ok()) << sharded_id.status().ToString();
    EXPECT_EQ(sharded_id.value(), single_id.value());
  }
  ASSERT_TRUE(single.Remove(4).ok());
  ASSERT_TRUE(engine->Remove(4).ok());

  ExpectGroupsDigestIdentical(*engine);
  EXPECT_EQ(engine->AntiEntropySweep(), 0u);
  EXPECT_EQ(engine->size(), single.size());

  // Answers stay bit-identical no matter which replica of each group serves:
  // check with each side of every group killed in turn.
  auto panel = HumPanel(corpus, 4);
  for (std::size_t kill = 0; kill < 2; ++kill) {
    auto probe = Replicated(corpus, 3, 2);
    // Rebuild the same state, then kill one side everywhere.
    for (Melody m : extra) ASSERT_TRUE(probe->Insert(std::move(m)).ok());
    ASSERT_TRUE(probe->Remove(4).ok());
    for (std::size_t s = 0; s < probe->num_shards(); ++s) {
      probe->QuarantineReplica(s, kill);
    }
    for (const Series& hum : panel) {
      QueryStats stats;
      ExpectSameMatches(probe->Query(hum, 5, QueryOptions(), &stats),
                        single.Query(hum, 5));
      EXPECT_FALSE(stats.partial);
    }
  }
}

TEST(ReplicationTest, FailedReplicaAppendDivergesItWhileTheWriteSucceeds) {
  FaultInjectingEnv env;
  auto corpus = Corpus(24, 5);
  auto engine = Replicated(corpus, 3, 2);
  const std::string dir = FreshDir("replication_diverge");
  ASSERT_TRUE(engine->AttachAll(dir, &env).ok());

  // The next WAL append crashes: the insert's fan-out hits replica 0 of the
  // target group first, fails there, and succeeds on replica 1.
  auto extra = Corpus(2, 88);
  env.CrashNextAppendAt(3);
  auto id = engine->Insert(extra[0]);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  const std::size_t s = static_cast<std::size_t>(id.value() % 3);

  // The replica that missed the write is out of the fan-out, not silently
  // behind; its peer serves the new melody.
  EXPECT_EQ(engine->replica_status(s, 0).health, ShardHealth::kQuarantined);
  EXPECT_EQ(engine->replica_status(s, 1).health, ShardHealth::kHealthy);
  EXPECT_EQ(engine->shard_status(s).serving_replicas, 1u);
  ASSERT_TRUE(engine->melody(id.value()).has_value());

  // Replica-driven reseed: repair ships a snapshot from the surviving peer
  // and the group converges digest-identical.
  env.ClearFaults();
  ASSERT_TRUE(engine->RepairReplica(s, 0).ok());
  EXPECT_EQ(engine->replica_status(s, 0).health, ShardHealth::kHealthy);
  ExpectGroupsDigestIdentical(*engine);
  EXPECT_EQ(engine->CheckGroupDivergence(s), 0u);
}

// --- Snapshot shipping ------------------------------------------------------

TEST(ReplicationTest, InMemoryShipRebuildsAReplicaWithoutStorage) {
  auto corpus = Corpus(24, 9);
  auto engine = Replicated(corpus, 3, 2);
  engine->QuarantineReplica(2, 0);
  ASSERT_TRUE(engine->RepairReplica(2, 0).ok());
  EXPECT_EQ(engine->shard_status(2).serving_replicas, 2u);
  ExpectGroupsDigestIdentical(*engine);
}

TEST(ReplicationTest, ShipRefusesASourceThatIsNotServing) {
  auto corpus = Corpus(24);
  auto engine = Replicated(corpus, 3, 2);
  engine->QuarantineReplica(0, 0);
  engine->QuarantineReplica(0, 1);
  Status st = engine->ShipSnapshot(0, 1, 0);
  EXPECT_EQ(st.code(), Status::Code::kFailedPrecondition);
  // And a destination that is still serving must be quarantined first.
  auto healthy = Replicated(corpus, 3, 2);
  st = healthy->ShipSnapshot(0, 0, 1);
  EXPECT_EQ(st.code(), Status::Code::kFailedPrecondition);
}

TEST(ReplicationDurabilityTest, ShipRebuildsADestroyedReplicaFromItsPeer) {
  auto corpus = Corpus(27, 11);
  QbhSystem single = SingleEngine(corpus);
  auto engine = Replicated(corpus, 3, 2);
  const std::string dir = FreshDir("replication_ship");
  ASSERT_TRUE(engine->AttachAll(dir).ok());

  // Replica 1 of shard 0 loses its storage entirely.
  Env* env = Env::Default();
  const std::string victim = ShardedEngine::ReplicaPath(dir, 0, 1);
  ASSERT_TRUE(env->AtomicWriteFile(victim, "not a database").ok());
  Status deleted = env->Delete(QbhSystem::WalPathFor(victim));
  (void)deleted;
  engine->QuarantineReplica(0, 1);

  // Repair prefers the peer's snapshot over the (destroyed) own storage.
  ASSERT_TRUE(engine->RepairReplica(0, 1).ok());
  EXPECT_EQ(engine->replica_status(0, 1).health, ShardHealth::kHealthy);
  EXPECT_EQ(engine->replica_status(0, 1).repairs, 1u);
  ExpectGroupsDigestIdentical(*engine);

  // The shipped checkpoint is durable: a fresh engine recovers both
  // replicas and answers bit-exact.
  engine.reset();
  ShardedOptions opts;
  opts.num_shards = 3;
  opts.replication = 2;
  auto reopened = ShardedEngine::Open(dir, opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(reopened.value()->shard_status(s).serving_replicas, 2u);
  }
  for (const Series& hum : HumPanel(corpus, 4)) {
    ExpectSameMatches(reopened.value()->Query(hum, 5), single.Query(hum, 5));
  }
}

TEST(ReplicationDurabilityTest, ShipCatchesUpTheWalTail) {
  auto corpus = Corpus(24, 13);
  QbhSystem single = SingleEngine(corpus);
  auto engine = Replicated(corpus, 3, 2);
  const std::string dir = FreshDir("replication_tail");
  ASSERT_TRUE(engine->AttachAll(dir).ok());

  // One side of every group falls out, then writes keep flowing: the
  // surviving replicas take them through their WALs.
  for (std::size_t s = 0; s < 3; ++s) engine->QuarantineReplica(s, 1);
  for (Melody m : Corpus(6, 99)) {
    auto single_id = single.Insert(m);
    ASSERT_TRUE(single_id.ok());
    auto id = engine->Insert(std::move(m));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(id.value(), single_id.value());
  }

  // Re-replicate every fallen replica from its peer (checkpoint + tail).
  for (std::size_t s = 0; s < 3; ++s) {
    ASSERT_TRUE(engine->RepairReplica(s, 1).ok());
  }
  ExpectGroupsDigestIdentical(*engine);
  for (const Series& hum : HumPanel(corpus, 4)) {
    // Kill the original side: the rebuilt replicas alone must answer
    // bit-exact, including the writes they missed.
    QueryStats stats;
    ExpectSameMatches(engine->Query(hum, 5, QueryOptions(), &stats),
                      single.Query(hum, 5));
    EXPECT_FALSE(stats.partial);
  }
  for (std::size_t s = 0; s < 3; ++s) engine->QuarantineReplica(s, 0);
  for (const Series& hum : HumPanel(corpus, 4)) {
    QueryStats stats;
    ExpectSameMatches(engine->Query(hum, 5, QueryOptions(), &stats),
                      single.Query(hum, 5));
    EXPECT_FALSE(stats.partial);
  }
}

// --- Anti-entropy -----------------------------------------------------------

TEST(ReplicationDurabilityTest, AntiEntropyQuarantinesAndReshipsTheMinority) {
  Env* env = Env::Default();
  auto corpus = Corpus(24, 21);
  const std::string dir = FreshDir("replication_entropy");
  {
    auto engine = Replicated(corpus, 3, 2);
    ASSERT_TRUE(engine->AttachAll(dir).ok());
    ASSERT_TRUE(engine->CheckpointAll().ok());
  }
  // Silent divergence no write observed: replica 1 of shard 0 is replaced on
  // disk with a same-shape checkpoint of *different* melodies.
  const std::string other_dir = FreshDir("replication_entropy_other");
  {
    auto other = Replicated(Corpus(24, 22), 3, 2);
    ASSERT_TRUE(other->AttachAll(other_dir).ok());
    ASSERT_TRUE(other->CheckpointAll().ok());
  }
  std::string bytes;
  ASSERT_TRUE(
      env->ReadFile(ShardedEngine::ReplicaPath(other_dir, 0, 1), &bytes).ok());
  ASSERT_TRUE(
      env->AtomicWriteFile(ShardedEngine::ReplicaPath(dir, 0, 1), bytes).ok());

  ShardedOptions opts;
  opts.num_shards = 3;
  opts.replication = 2;
  auto reopened = ShardedEngine::Open(dir, opts);
  ASSERT_TRUE(reopened.ok());
  ShardedEngine& engine = *reopened.value();

  // Both replicas serve (each is individually consistent) but disagree; the
  // sweep catches it and sides with the lowest replica index on a 1-1 tie.
  const auto d0 = engine.ReplicaDigest(0, 0);
  const auto d1 = engine.ReplicaDigest(0, 1);
  ASSERT_TRUE(d0.ok() && d1.ok());
  EXPECT_NE(d0.value(), d1.value());
  EXPECT_EQ(engine.AntiEntropySweep(), 1u);
  EXPECT_EQ(engine.replica_status(0, 1).health, ShardHealth::kQuarantined);
  EXPECT_EQ(engine.replica_status(0, 0).health, ShardHealth::kHealthy);

  // Re-ship converges the group back to digest-identical.
  ASSERT_TRUE(engine.RepairReplica(0, 1).ok());
  ExpectGroupsDigestIdentical(engine);
  EXPECT_EQ(engine.AntiEntropySweep(), 0u);
}

// --- Replicated durable lifecycle -------------------------------------------

TEST(ReplicationDurabilityTest, OpenServesWhenOneReplicaOfAGroupIsDestroyed) {
  Env* env = Env::Default();
  auto corpus = Corpus(24, 31);
  QbhSystem single = SingleEngine(corpus);
  const std::string dir = FreshDir("replication_open");
  {
    auto engine = Replicated(corpus, 3, 2);
    ASSERT_TRUE(engine->AttachAll(dir).ok());
  }
  const std::string victim = ShardedEngine::ReplicaPath(dir, 1, 0);
  ASSERT_TRUE(env->AtomicWriteFile(victim, "@@corrupt@@").ok());
  Status deleted = env->Delete(QbhSystem::WalPathFor(victim));
  (void)deleted;

  ShardedOptions opts;
  opts.num_shards = 3;
  opts.replication = 2;
  std::vector<RecoveryStats> recovery;
  auto reopened = ShardedEngine::Open(dir, opts, nullptr, &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ShardedEngine& engine = *reopened.value();
  ASSERT_EQ(recovery.size(), 3u);

  EXPECT_EQ(engine.replica_status(1, 0).health, ShardHealth::kQuarantined);
  EXPECT_EQ(engine.shard_status(1).serving_replicas, 1u);
  EXPECT_EQ(engine.serving_shards(), 3u);
  for (const Series& hum : HumPanel(corpus, 4)) {
    QueryStats stats;
    ExpectSameMatches(engine.Query(hum, 5, QueryOptions(), &stats),
                      single.Query(hum, 5));
    EXPECT_FALSE(stats.partial);  // the group still answers in full
  }

  // Self-service recovery: the destroyed replica rejoins from its peer.
  ASSERT_TRUE(engine.RepairReplica(1, 0).ok());
  EXPECT_EQ(engine.shard_status(1).serving_replicas, 2u);
  ExpectGroupsDigestIdentical(engine);
}

TEST(ReplicationDurabilityTest, BackgroundMaintenanceReshipsAFallenReplica) {
  auto corpus = Corpus(24, 41);
  auto engine = Replicated(corpus, 3, 2);
  const std::string dir = FreshDir("replication_bg");
  ASSERT_TRUE(engine->AttachAll(dir).ok());

  engine->QuarantineReplica(0, 1);
  engine->StartBackgroundRepair(1);
  for (int i = 0; i < 2000; ++i) {
    if (engine->shard_status(0).serving_replicas == 2u) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  engine->StopBackgroundRepair();
  EXPECT_EQ(engine->shard_status(0).serving_replicas, 2u);
  ExpectGroupsDigestIdentical(*engine);
}

TEST(ReplicationDurabilityTest, ReseedRebuildsEveryReplicaOfAGroup) {
  auto corpus = Corpus(24, 51);
  QbhSystem single = SingleEngine(corpus);
  auto engine = Replicated(corpus, 3, 2);
  const std::string dir = FreshDir("replication_reseed");
  ASSERT_TRUE(engine->AttachAll(dir).ok());

  engine->QuarantineShard(2);
  std::vector<std::pair<std::int64_t, Melody>> rows;
  for (std::size_t g = 2; g < corpus.size(); g += 3) {
    rows.emplace_back(static_cast<std::int64_t>(g), corpus[g]);
  }
  ASSERT_TRUE(engine->ReseedShard(2, std::move(rows)).ok());
  EXPECT_EQ(engine->shard_status(2).serving_replicas, 2u);
  ExpectGroupsDigestIdentical(*engine);
  for (const Series& hum : HumPanel(corpus, 4)) {
    QueryStats stats;
    ExpectSameMatches(engine->Query(hum, 5, QueryOptions(), &stats),
                      single.Query(hum, 5));
    EXPECT_FALSE(stats.partial);
  }
}

}  // namespace
}  // namespace serve
}  // namespace humdex
