#include <gtest/gtest.h>

#include <cmath>

#include "util/fft.h"
#include "util/random.h"

namespace humdex {
namespace {

TEST(FftTest, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(1000));
}

TEST(FftTest, MatchesNaiveDftOnRandomInput) {
  Rng rng(42);
  for (std::size_t n : {4u, 8u, 64u, 256u}) {
    std::vector<double> x(n);
    for (double& v : x) v = rng.Gaussian();
    auto fast = RealFft(x);
    auto naive = NaiveDft(x);
    ASSERT_EQ(fast.size(), naive.size());
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(fast[k].real(), naive[k].real(), 1e-8) << "n=" << n << " k=" << k;
      EXPECT_NEAR(fast[k].imag(), naive[k].imag(), 1e-8) << "n=" << n << " k=" << k;
    }
  }
}

TEST(FftTest, InverseRecoversInput) {
  Rng rng(7);
  std::vector<double> x(128);
  for (double& v : x) v = rng.Uniform(-5, 5);
  auto spec = RealFft(x);
  auto back = InverseFft(spec);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i].real(), x[i], 1e-9);
    EXPECT_NEAR(back[i].imag(), 0.0, 1e-9);
  }
}

TEST(FftTest, ImpulseHasFlatSpectrum) {
  std::vector<double> x(16, 0.0);
  x[0] = 1.0;
  auto spec = RealFft(x);
  for (const auto& c : spec) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, ConstantHasOnlyDc) {
  std::vector<double> x(32, 3.0);
  auto spec = RealFft(x);
  EXPECT_NEAR(spec[0].real(), 96.0, 1e-9);
  for (std::size_t k = 1; k < spec.size(); ++k) {
    EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-9);
  }
}

TEST(FftTest, ParsevalHolds) {
  Rng rng(11);
  std::vector<double> x(64);
  double time_energy = 0.0;
  for (double& v : x) {
    v = rng.Gaussian();
    time_energy += v * v;
  }
  auto spec = RealFft(x);
  double freq_energy = 0.0;
  for (const auto& c : spec) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / 64.0, time_energy, 1e-8);
}

TEST(FftTest, RealInputConjugateSymmetry) {
  Rng rng(13);
  std::vector<double> x(32);
  for (double& v : x) v = rng.Gaussian();
  auto spec = RealFft(x);
  for (std::size_t k = 1; k < 16; ++k) {
    EXPECT_NEAR(spec[k].real(), spec[32 - k].real(), 1e-9);
    EXPECT_NEAR(spec[k].imag(), -spec[32 - k].imag(), 1e-9);
  }
}

TEST(FftTest, LinearityOfTransform) {
  Rng rng(17);
  std::vector<double> x(16), y(16), z(16);
  for (std::size_t i = 0; i < 16; ++i) {
    x[i] = rng.Gaussian();
    y[i] = rng.Gaussian();
    z[i] = 2.0 * x[i] - 3.0 * y[i];
  }
  auto fx = RealFft(x), fy = RealFft(y), fz = RealFft(z);
  for (std::size_t k = 0; k < 16; ++k) {
    Complex expect = 2.0 * fx[k] - 3.0 * fy[k];
    EXPECT_NEAR(std::abs(fz[k] - expect), 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace humdex
