#include <gtest/gtest.h>

#include <algorithm>

#include "index/linear_scan.h"
#include "util/random.h"

namespace humdex {
namespace {

TEST(LinearScanTest, RangeQuerySemanticsPointQuery) {
  LinearScanIndex scan(2);
  scan.Insert({0, 0}, 0);
  scan.Insert({3, 4}, 1);
  scan.Insert({6, 8}, 2);
  auto r = scan.RangeQuery(Rect::FromPoint({0, 0}), 5.0);
  std::sort(r.begin(), r.end());
  EXPECT_EQ(r, (std::vector<std::int64_t>{0, 1}));
}

TEST(LinearScanTest, RangeQueryRectSemantics) {
  LinearScanIndex scan(1);
  scan.Insert({0.0}, 0);
  scan.Insert({5.0}, 1);
  scan.Insert({10.0}, 2);
  // Rect [4,6] radius 1.5 covers [2.5, 7.5].
  auto r = scan.RangeQuery(Rect({4.0}, {6.0}), 1.5);
  EXPECT_EQ(r, (std::vector<std::int64_t>{1}));
}

TEST(LinearScanTest, KnnOrderingAndTruncation) {
  LinearScanIndex scan(1);
  for (std::int64_t id = 0; id < 10; ++id) {
    scan.Insert({static_cast<double>(id)}, id);
  }
  auto nn = scan.KnnQuery({3.2}, 3);
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0].id, 3);
  EXPECT_EQ(nn[1].id, 4);
  EXPECT_EQ(nn[2].id, 2);
  // k larger than the index returns everything.
  EXPECT_EQ(scan.KnnQuery({0.0}, 100).size(), 10u);
}

TEST(LinearScanTest, KnnTieBreaksById) {
  LinearScanIndex scan(1);
  scan.Insert({1.0}, 7);
  scan.Insert({1.0}, 3);
  auto nn = scan.KnnQuery({1.0}, 2);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].id, 3);
  EXPECT_EQ(nn[1].id, 7);
}

TEST(LinearScanTest, SizeTracksInserts) {
  LinearScanIndex scan(3);
  EXPECT_EQ(scan.size(), 0u);
  for (std::int64_t id = 0; id < 17; ++id) scan.Insert({0, 0, 0}, id);
  EXPECT_EQ(scan.size(), 17u);
}

}  // namespace
}  // namespace humdex
