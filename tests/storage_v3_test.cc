// The v3 binary checkpoint format (DESIGN.md §14): round trips across every
// scheme/index combination, bit-identical answers from a mapped corpus,
// durable Attach/Open/Checkpoint/WAL interplay, snapshot shipping, salvage,
// and mapped opens under injected IO faults. Corruption exhaustiveness (the
// all-bits-flip / all-truncations matrix) lives in corruption_test.cc.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "music/hummer.h"
#include "music/song_generator.h"
#include "qbh/storage.h"
#include "qbh/storage_v3.h"
#include "util/env.h"

namespace humdex {
namespace {

QbhSystem MakeSystem(QbhOptions opt, std::size_t corpus_size,
                     std::uint64_t seed = 3) {
  SongGenerator gen(seed);
  QbhSystem system(opt);
  for (Melody& m : gen.GeneratePhrases(corpus_size)) {
    system.AddMelody(std::move(m));
  }
  system.Build();
  return system;
}

QbhOptions V3Options() {
  QbhOptions opt;
  opt.format = CheckpointFormat::kV3Binary;
  return opt;
}

// Minimal reader for the documented header/table layout (storage_v3.h), so
// tests can aim damage at a specific section without replicating the parser.
std::uint32_t LoadU32(const std::string& s, std::size_t off) {
  std::uint32_t v;
  std::memcpy(&v, s.data() + off, sizeof v);
  return v;
}
std::uint64_t LoadU64(const std::string& s, std::size_t off) {
  std::uint64_t v;
  std::memcpy(&v, s.data() + off, sizeof v);
  return v;
}
struct SectionSpan {
  std::uint32_t type;
  std::uint64_t offset;
  std::uint64_t length;
};
std::vector<SectionSpan> SectionsOf(const std::string& image) {
  std::vector<SectionSpan> out;
  std::uint32_t count = LoadU32(image, 16);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::size_t e = 64 + 32 * static_cast<std::size_t>(i);
    out.push_back({LoadU32(image, e), LoadU64(image, e + 8),
                   LoadU64(image, e + 16)});
  }
  return out;
}
SectionSpan FindSection(const std::string& image, std::uint32_t type) {
  for (const SectionSpan& s : SectionsOf(image)) {
    if (s.type == type) return s;
  }
  ADD_FAILURE() << "section type " << type << " not present";
  return {};
}

void ExpectSameAnswers(const QbhSystem& a, const QbhSystem& b,
                       std::uint64_t hum_seed, std::size_t hums) {
  Hummer hummer(HummerProfile::Good(), hum_seed);
  for (std::size_t q = 0; q < hums; ++q) {
    std::int64_t target = static_cast<std::int64_t>(q * 7 % a.size());
    Series hum = hummer.Hum(*a.melody(target));
    auto ma = a.Query(hum, 5);
    auto mb = b.Query(hum, 5);
    ASSERT_EQ(ma.size(), mb.size()) << "hum " << q;
    for (std::size_t i = 0; i < ma.size(); ++i) {
      EXPECT_EQ(ma[i].id, mb[i].id) << "hum " << q << " rank " << i;
      // Bit-identical, not approximately equal: the mapped corpus serves the
      // same envelopes/meta/features the builder computed.
      EXPECT_EQ(ma[i].distance, mb[i].distance) << "hum " << q << " rank " << i;
    }
    if (!ma.empty()) {
      double eps = ma.back().distance * 1.5 + 1.0;
      auto ra = a.RangeQuery(hum, eps);
      auto rb = b.RangeQuery(hum, eps);
      ASSERT_EQ(ra.size(), rb.size()) << "range hum " << q;
      for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].id, rb[i].id);
        EXPECT_EQ(ra[i].distance, rb[i].distance);
      }
    }
  }
}

TEST(StorageV3Test, MagicIsRecognizedOnlyOnV3Images) {
  QbhSystem v3 = MakeSystem(V3Options(), 5);
  QbhSystem v2 = MakeSystem(QbhOptions(), 5);
  EXPECT_TRUE(LooksLikeV3(SerializeQbhDatabase(v3)));
  EXPECT_FALSE(LooksLikeV3(SerializeQbhDatabase(v2)));
  EXPECT_FALSE(LooksLikeV3(""));
  EXPECT_FALSE(LooksLikeV3("humdex-db v2\n"));
}

TEST(StorageV3Test, RoundTripPreservesCorpusOptionsAndFormat) {
  QbhOptions opt = V3Options();
  opt.normal_len = 64;
  opt.warping_width = 0.15;
  opt.feature_dim = 4;
  QbhSystem original = MakeSystem(opt, 30);
  std::string image = SerializeQbhDatabase(original);
  ASSERT_TRUE(LooksLikeV3(image));

  Result<QbhSystem> loaded = ParseQbhDatabase(image);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const QbhSystem& sys = loaded.value();
  EXPECT_TRUE(sys.built());
  EXPECT_EQ(sys.size(), original.size());
  EXPECT_EQ(sys.next_id(), original.next_id());
  EXPECT_EQ(sys.Digest(), original.Digest());
  EXPECT_EQ(sys.options().normal_len, 64u);
  EXPECT_DOUBLE_EQ(sys.options().warping_width, 0.15);
  EXPECT_EQ(sys.options().feature_dim, 4u);
  // Loading a v3 file sets the format so the system checkpoints back in kind.
  EXPECT_EQ(sys.options().format, CheckpointFormat::kV3Binary);
  EXPECT_EQ(sys.melody(7)->name, original.melody(7)->name);
}

TEST(StorageV3Test, RoundTripsEverySchemeAndIndexKind) {
  const SchemeKind schemes[] = {SchemeKind::kNewPaa, SchemeKind::kKeoghPaa,
                                SchemeKind::kDft, SchemeKind::kDwt,
                                SchemeKind::kSvd};
  const IndexKind indexes[] = {IndexKind::kRStarTree, IndexKind::kGridFile,
                               IndexKind::kLinearScan};
  for (SchemeKind scheme : schemes) {
    for (IndexKind index : indexes) {
      QbhOptions opt = V3Options();
      opt.normal_len = 64;
      opt.feature_dim = 4;
      opt.scheme = scheme;
      opt.index = index;
      QbhSystem original = MakeSystem(opt, 24);
      Result<QbhSystem> loaded =
          ParseQbhDatabase(SerializeQbhDatabase(original));
      ASSERT_TRUE(loaded.ok())
          << "scheme " << static_cast<int>(scheme) << " index "
          << static_cast<int>(index) << ": " << loaded.status().ToString();
      EXPECT_EQ(loaded.value().Digest(), original.Digest());
      EXPECT_EQ(loaded.value().options().scheme, scheme);
      EXPECT_EQ(loaded.value().options().index, index);
      ExpectSameAnswers(original, loaded.value(), /*hum_seed=*/5, /*hums=*/2);
    }
  }
}

TEST(StorageV3Test, MappedCorpusAnswersBitIdenticallyToFreshEngine) {
  QbhSystem original = MakeSystem(V3Options(), 80, /*seed=*/9);
  Result<QbhSystem> loaded = ParseQbhDatabase(SerializeQbhDatabase(original));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameAnswers(original, loaded.value(), /*hum_seed=*/11, /*hums=*/8);
}

TEST(StorageV3Test, V2TextPathIsUnchangedByDefault) {
  QbhSystem system = MakeSystem(QbhOptions(), 8);
  std::string text = SerializeQbhDatabase(system);
  EXPECT_EQ(text.rfind("humdex-db v2\n", 0), 0u);
  Result<QbhSystem> loaded = ParseQbhDatabase(text);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().options().format, CheckpointFormat::kV2Text);
  // And a reloaded v3 system re-serializes as v3.
  Result<QbhSystem> v3 =
      ParseQbhDatabase(SerializeQbhDatabase(MakeSystem(V3Options(), 8)));
  ASSERT_TRUE(v3.ok());
  EXPECT_TRUE(LooksLikeV3(SerializeQbhDatabase(v3.value())));
}

TEST(StorageV3Test, AttachWritesV3AndOpenMapsItBack) {
  Env* env = Env::Default();
  std::string path = ::testing::TempDir() + "/v3_attach.db";
  QbhSystem original = MakeSystem(V3Options(), 20, /*seed=*/7);
  ASSERT_TRUE(original.Attach(path, env).ok());

  std::string raw;
  ASSERT_TRUE(env->ReadFile(path, &raw).ok());
  EXPECT_TRUE(LooksLikeV3(raw));

  RecoveryStats stats;
  Result<QbhSystem> reopened = QbhSystem::Open(path, env, &stats);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().Digest(), original.Digest());
  EXPECT_TRUE(reopened.value().durable());
  EXPECT_EQ(stats.records_replayed, 0u);
  EXPECT_GT(stats.open_ns, 0u);
  env->Delete(path);
  env->Delete(QbhSystem::WalPathFor(path));
}

TEST(StorageV3Test, WalMutationsAfterMappedOpenSurviveReopen) {
  Env* env = Env::Default();
  std::string path = ::testing::TempDir() + "/v3_wal.db";
  {
    QbhSystem system = MakeSystem(V3Options(), 10, /*seed=*/4);
    ASSERT_TRUE(system.Attach(path, env).ok());
  }
  std::uint32_t mutated_digest;
  {
    Result<QbhSystem> r = QbhSystem::Open(path, env);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    QbhSystem& system = r.value();
    // Mutating a system whose engine borrows the file mapping must
    // materialize owned copies, never write through the mapped image.
    SongGenerator gen(77);
    for (Melody& m : gen.GeneratePhrases(2)) {
      ASSERT_TRUE(system.Insert(std::move(m)).ok());
    }
    ASSERT_TRUE(system.Remove(3).ok());
    mutated_digest = system.Digest();
  }
  RecoveryStats stats;
  Result<QbhSystem> reopened = QbhSystem::Open(path, env, &stats);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(stats.records_replayed, 3u);
  EXPECT_EQ(reopened.value().Digest(), mutated_digest);
  EXPECT_EQ(reopened.value().melody(3), std::nullopt);

  // Checkpoint the replayed state: still v3, WAL truncated, digest stable.
  ASSERT_TRUE(reopened.value().Checkpoint().ok());
  std::string raw;
  ASSERT_TRUE(env->ReadFile(path, &raw).ok());
  EXPECT_TRUE(LooksLikeV3(raw));
  RecoveryStats stats2;
  Result<QbhSystem> again = QbhSystem::Open(path, env, &stats2);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(stats2.records_replayed, 0u);
  EXPECT_EQ(again.value().Digest(), mutated_digest);
  env->Delete(path);
  env->Delete(QbhSystem::WalPathFor(path));
}

TEST(StorageV3Test, TombstonesAndNextIdSurviveTheBinaryRoundTrip) {
  std::string path = ::testing::TempDir() + "/v3_tombstones.db";
  Env* env = Env::Default();
  QbhSystem system = MakeSystem(V3Options(), 6, /*seed=*/13);
  ASSERT_TRUE(system.Attach(path, env).ok());
  ASSERT_TRUE(system.Remove(2).ok());
  SongGenerator gen(99);
  for (Melody& m : gen.GeneratePhrases(1)) {
    ASSERT_TRUE(system.Insert(std::move(m)).ok());
  }
  ASSERT_TRUE(system.Checkpoint().ok());

  Result<QbhSystem> reopened = QbhSystem::Open(path, env);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().size(), 6u);
  EXPECT_EQ(reopened.value().next_id(), 7);
  EXPECT_EQ(reopened.value().melody(2), std::nullopt);
  EXPECT_EQ(reopened.value().Digest(), system.Digest());
  env->Delete(path);
  env->Delete(QbhSystem::WalPathFor(path));
}

TEST(StorageV3Test, SnapshotShipIsDigestEqual) {
  QbhSystem primary = MakeSystem(V3Options(), 25, /*seed=*/21);
  std::string snapshot = primary.ExportSnapshot();
  EXPECT_TRUE(LooksLikeV3(snapshot));
  // The shipped string is not page-aligned memory; the parser must still
  // serve it (it copies into an aligned owned buffer).
  Result<QbhSystem> replica = ParseQbhDatabase(snapshot);
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  EXPECT_EQ(replica.value().Digest(), primary.Digest());
  // Ship the replica's own snapshot onward: still digest-equal.
  Result<QbhSystem> second = ParseQbhDatabase(replica.value().ExportSnapshot());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().Digest(), primary.Digest());
}

TEST(StorageV3Test, SalvageDropsOnlyTheDamagedMelodyFrame) {
  QbhSystem original = MakeSystem(V3Options(), 6, /*seed=*/31);
  std::string image = SerializeQbhDatabase(original);
  // Damage melody 1 by flipping a byte of its name, which is stored raw
  // inside its checksummed frame in the MELODIES section.
  const std::string& name = original.melody(1)->name;
  std::size_t at = image.find(name, 4096);
  ASSERT_NE(at, std::string::npos);
  image[at] = static_cast<char>(image[at] ^ 0x40);

  EXPECT_FALSE(ParseQbhDatabase(image).ok());
  SalvageReport report;
  Result<QbhSystem> r = ParseQbhDatabaseSalvage(image, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(report.crc_ok);
  EXPECT_TRUE(report.ids_stable);
  EXPECT_EQ(report.melodies_loaded, 5u);
  EXPECT_EQ(report.melodies_dropped, 1u);
  EXPECT_EQ(r.value().melody(1), std::nullopt);
  EXPECT_EQ(r.value().melody(2)->name, original.melody(2)->name);
  EXPECT_EQ(r.value().next_id(), original.next_id());
}

TEST(StorageV3Test, SalvageRebuildsDamagedDerivedSections) {
  // Damage in a derived section (envelopes here) loses nothing: salvage
  // rebuilds every derived structure from the per-frame-checksummed
  // melodies, and the rebuilt system answers exactly like the original.
  QbhSystem original = MakeSystem(V3Options(), 12, /*seed=*/41);
  std::string image = SerializeQbhDatabase(original);
  SectionSpan env_sec = FindSection(image, /*kSecEnvelopes=*/6);
  ASSERT_GT(env_sec.length, 0u);
  std::size_t at = static_cast<std::size_t>(env_sec.offset + env_sec.length / 2);
  image[at] = static_cast<char>(image[at] ^ 0x01);

  EXPECT_FALSE(ParseQbhDatabase(image).ok());
  SalvageReport report;
  Result<QbhSystem> r = ParseQbhDatabaseSalvage(image, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(report.melodies_loaded, 12u);
  EXPECT_EQ(report.melodies_dropped, 0u);
  EXPECT_EQ(r.value().Digest(), original.Digest());
  ExpectSameAnswers(original, r.value(), /*hum_seed=*/17, /*hums=*/3);
}

TEST(StorageV3Test, SalvageSurvivesADestroyedSectionTable) {
  QbhSystem original = MakeSystem(V3Options(), 5, /*seed=*/51);
  std::string image = SerializeQbhDatabase(original);
  image[56] = static_cast<char>(image[56] ^ 0xff);  // table_crc byte

  EXPECT_FALSE(ParseQbhDatabase(image).ok());
  SalvageReport report;
  Result<QbhSystem> r = ParseQbhDatabaseSalvage(image, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(report.crc_ok);
  EXPECT_EQ(report.melodies_loaded, 5u);
  EXPECT_EQ(r.value().Digest(), original.Digest());
}

TEST(StorageV3Test, OpenSalvageRecoversADamagedV3Checkpoint) {
  Env* env = Env::Default();
  std::string path = ::testing::TempDir() + "/v3_salvage.db";
  QbhSystem original = MakeSystem(V3Options(), 6, /*seed=*/61);
  ASSERT_TRUE(original.Attach(path, env).ok());

  std::string image;
  ASSERT_TRUE(env->ReadFile(path, &image).ok());
  const std::string& name = original.melody(4)->name;
  std::size_t at = image.find(name, 4096);
  ASSERT_NE(at, std::string::npos);
  image[at] = static_cast<char>(image[at] ^ 0x20);
  ASSERT_TRUE(env->AtomicWriteFile(path, image).ok());

  ASSERT_FALSE(QbhSystem::Open(path, env).ok());
  RecoveryStats stats;
  Result<QbhSystem> r = QbhSystem::OpenSalvage(path, env, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(stats.salvaged);
  EXPECT_TRUE(stats.ids_stable);
  EXPECT_EQ(stats.melodies_dropped, 1u);
  EXPECT_GT(stats.open_ns, 0u);
  EXPECT_EQ(r.value().size(), 5u);
  EXPECT_EQ(r.value().melody(4), std::nullopt);
  env->Delete(path);
  env->Delete(QbhSystem::WalPathFor(path));
}

TEST(StorageV3Test, MappedOpenRetriesTransientReadFaults) {
  FaultInjectingEnv env;
  std::string path = ::testing::TempDir() + "/v3_transient.db";
  QbhSystem original = MakeSystem(V3Options(), 8, /*seed=*/71);
  ASSERT_TRUE(SaveQbhDatabase(path, original, &env).ok());

  env.FailNextReads(2);  // default policy retries up to 3 attempts
  Result<QbhSystem> r = LoadQbhDatabase(path, &env);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Digest(), original.Digest());
  env.Delete(path);
}

TEST(StorageV3Test, TruncatedMappedReadSurfacesAsCorruption) {
  FaultInjectingEnv env;
  std::string path = ::testing::TempDir() + "/v3_truncated.db";
  QbhSystem original = MakeSystem(V3Options(), 8, /*seed=*/81);
  ASSERT_TRUE(SaveQbhDatabase(path, original, &env).ok());
  std::string image = SerializeQbhDatabase(original);

  env.TruncateNextRead(image.size() / 2);
  Result<QbhSystem> r = LoadQbhDatabase(path, &env);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  env.Delete(path);
}

TEST(StorageV3Test, CrashAtEveryWriteStepPreservesTheOldV3Database) {
  FaultInjectingEnv env;
  std::string path = ::testing::TempDir() + "/v3_crash.db";
  QbhSystem db1 = MakeSystem(V3Options(), 4, /*seed=*/91);
  QbhSystem db2 = MakeSystem(V3Options(), 7, /*seed=*/92);
  ASSERT_TRUE(SaveQbhDatabase(path, db1, &env).ok());
  std::string db1_bytes;
  ASSERT_TRUE(env.ReadFile(path, &db1_bytes).ok());
  ASSERT_TRUE(LooksLikeV3(db1_bytes));

  using WS = FaultInjectingEnv::WriteStep;
  for (WS step : {WS::kOpenTemp, WS::kWriteBody, WS::kSync, WS::kRename}) {
    env.CrashNextWriteAt(step, /*torn_bytes=*/db1_bytes.size() / 3);
    EXPECT_EQ(SaveQbhDatabase(path, db2, &env).code(),
              Status::Code::kIoError)
        << "crash step " << static_cast<int>(step);
    std::string after;
    ASSERT_TRUE(env.ReadFile(path, &after).ok());
    EXPECT_EQ(after, db1_bytes) << "crash step " << static_cast<int>(step);
    Result<QbhSystem> r = LoadQbhDatabase(path, &env);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().Digest(), db1.Digest());
  }
  env.Delete(path);
  env.Delete(path + ".tmp");
}

TEST(StorageV3Test, SectionsArePageAlignedAndExactlySized) {
  QbhSystem system = MakeSystem(V3Options(), 10);
  std::string image = SerializeQbhDatabase(system);
  ASSERT_GE(image.size(), 4096u);
  EXPECT_EQ(LoadU64(image, 24), image.size());  // header file_size is exact
  EXPECT_EQ(LoadU64(image, 40), 10u);           // melody_count
  std::vector<SectionSpan> secs = SectionsOf(image);
  ASSERT_FALSE(secs.empty());
  std::uint64_t prev_end = 4096;
  for (const SectionSpan& s : secs) {
    EXPECT_EQ(s.offset % 4096, 0u) << "section type " << s.type;
    EXPECT_GE(s.offset, prev_end);
    prev_end = s.offset + s.length;
  }
  EXPECT_EQ(prev_end, image.size());  // no trailing pad after the last section
}

}  // namespace
}  // namespace humdex
