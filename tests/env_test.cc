// Env abstraction: PosixEnv file semantics, FaultInjectingEnv determinism,
// and the retry-with-backoff layer that absorbs transient faults.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/env.h"
#include "util/retry.h"

namespace humdex {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(PosixEnvTest, WriteReadRoundTrip) {
  Env* env = Env::Default();
  std::string path = TempPath("env_round_trip.txt");
  std::string data = "hello\nworld\0binary too";
  data.push_back('\xff');
  ASSERT_TRUE(env->AtomicWriteFile(path, data).ok());
  std::string back;
  ASSERT_TRUE(env->ReadFile(path, &back).ok());
  EXPECT_EQ(back, data);
  EXPECT_TRUE(env->Exists(path));
  EXPECT_TRUE(env->Delete(path).ok());
  EXPECT_FALSE(env->Exists(path));
}

TEST(PosixEnvTest, ReadMissingFileIsNotFound) {
  std::string out;
  Status st = Env::Default()->ReadFile("/nonexistent/env_test_file", &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kNotFound);
}

TEST(PosixEnvTest, DeleteMissingFileIsNotFound) {
  EXPECT_EQ(Env::Default()->Delete("/nonexistent/env_test_file").code(),
            Status::Code::kNotFound);
}

TEST(PosixEnvTest, AtomicWriteReplacesExistingContent) {
  Env* env = Env::Default();
  std::string path = TempPath("env_replace.txt");
  ASSERT_TRUE(env->AtomicWriteFile(path, "old content").ok());
  ASSERT_TRUE(env->AtomicWriteFile(path, "new").ok());
  std::string back;
  ASSERT_TRUE(env->ReadFile(path, &back).ok());
  EXPECT_EQ(back, "new");
  env->Delete(path);
}

TEST(PosixEnvTest, AtomicWriteLeavesNoTempFileBehind) {
  Env* env = Env::Default();
  std::string path = TempPath("env_no_debris.txt");
  ASSERT_TRUE(env->AtomicWriteFile(path, "data").ok());
  EXPECT_FALSE(env->Exists(path + ".tmp"));
  env->Delete(path);
}

TEST(PosixEnvTest, FileSizeAndRangeReads) {
  Env* env = Env::Default();
  std::string path = TempPath("env_range.txt");
  ASSERT_TRUE(env->AtomicWriteFile(path, "0123456789").ok());

  std::uint64_t size = 0;
  ASSERT_TRUE(env->FileSize(path, &size).ok());
  EXPECT_EQ(size, 10u);
  EXPECT_EQ(env->FileSize(TempPath("no_such_file"), &size).code(),
            Status::Code::kNotFound);

  char buf[4] = {};
  ASSERT_TRUE(env->ReadFileRange(path, 3, 4, buf).ok());
  EXPECT_EQ(std::string(buf, 4), "3456");
  ASSERT_TRUE(env->ReadFileRange(path, 0, 0, nullptr).ok());  // empty range
  // A range past EOF is an error, not a silent short read.
  EXPECT_FALSE(env->ReadFileRange(path, 8, 4, buf).ok());
  env->Delete(path);
}

TEST(PosixEnvTest, MapFileServesTheExactBytes) {
  Env* env = Env::Default();
  std::string path = TempPath("env_map.bin");
  std::string data(8192, '\0');
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 131);
  }
  ASSERT_TRUE(env->AtomicWriteFile(path, data).ok());

  MemorySource src;
  ASSERT_TRUE(env->MapFile(path, &src).ok());
  EXPECT_EQ(src.size(), data.size());
  EXPECT_EQ(src.view(), data);
  EXPECT_EQ(env->MapFile(TempPath("no_such_file"), &src).code(),
            Status::Code::kNotFound);
  env->Delete(path);
}

TEST(PosixEnvTest, MapFileOfEmptyFileIsEmptySource) {
  Env* env = Env::Default();
  std::string path = TempPath("env_map_empty.bin");
  ASSERT_TRUE(env->AtomicWriteFile(path, "").ok());
  MemorySource src;
  ASSERT_TRUE(env->MapFile(path, &src).ok());
  EXPECT_TRUE(src.empty());
  env->Delete(path);
}

TEST(MemorySourceTest, AllocateOwnedIsZeroedAndPageAligned) {
  MemorySource src = MemorySource::AllocateOwned(10000);
  ASSERT_EQ(src.size(), 10000u);
  EXPECT_FALSE(src.mapped());
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(src.data()) % 4096, 0u);
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(src.data()[i], 0) << "byte " << i;
  }
  src.mutable_data()[17] = 'x';
  EXPECT_EQ(src.view()[17], 'x');
}

TEST(FaultInjectingEnvTest, MapFileSeesInjectedReadFaults) {
  // FaultInjectingEnv inherits the base Env::MapFile, which routes through
  // its FileSize/ReadFileRange overrides — so a mapped open hits the same
  // fault schedule as plain reads (and sanitizers see every access).
  FaultInjectingEnv env;
  std::string path = TempPath("fault_map.bin");
  ASSERT_TRUE(env.AtomicWriteFile(path, std::string(4096, 'a')).ok());

  env.FailNextReads(1);
  MemorySource src;
  EXPECT_EQ(env.MapFile(path, &src).code(), Status::Code::kIoError);
  ASSERT_TRUE(env.MapFile(path, &src).ok());  // fault consumed
  EXPECT_EQ(src.size(), 4096u);
  EXPECT_FALSE(src.mapped());  // read-into-buffer, not an mmap
  env.Delete(path);
}

TEST(FaultInjectingEnvTest, FailNextReadsInjectsTransientIoErrors) {
  FaultInjectingEnv env;
  std::string path = TempPath("fault_reads.txt");
  ASSERT_TRUE(env.AtomicWriteFile(path, "payload").ok());

  env.FailNextReads(2);
  std::string out;
  EXPECT_EQ(env.ReadFile(path, &out).code(), Status::Code::kIoError);
  EXPECT_EQ(env.ReadFile(path, &out).code(), Status::Code::kIoError);
  ASSERT_TRUE(env.ReadFile(path, &out).ok());  // fault budget exhausted
  EXPECT_EQ(out, "payload");
  EXPECT_EQ(env.faults_injected(), 2u);
  env.Delete(path);
}

TEST(FaultInjectingEnvTest, PeriodicReadFaultsAreDeterministic) {
  FaultInjectingEnv env;
  std::string path = TempPath("fault_periodic.txt");
  ASSERT_TRUE(env.AtomicWriteFile(path, "x").ok());

  env.FailReadsPeriodically(3, 1);  // reads 1, 4, 7, ... fail
  std::string out;
  std::vector<bool> ok;
  for (int i = 0; i < 6; ++i) ok.push_back(env.ReadFile(path, &out).ok());
  EXPECT_EQ(ok, (std::vector<bool>{true, false, true, true, false, true}));
  env.ClearFaults();
  env.Delete(path);
}

TEST(FaultInjectingEnvTest, SeededRandomFaultsReproduce) {
  std::string path = TempPath("fault_seeded.txt");
  ASSERT_TRUE(Env::Default()->AtomicWriteFile(path, "x").ok());

  auto fault_pattern = [&](std::uint64_t seed) {
    FaultInjectingEnv env;
    env.FailReadsRandomly(seed, 3);
    std::string out;
    std::vector<bool> pattern;
    for (int i = 0; i < 32; ++i) pattern.push_back(env.ReadFile(path, &out).ok());
    return pattern;
  };
  EXPECT_EQ(fault_pattern(7), fault_pattern(7));      // same seed, same faults
  EXPECT_NE(fault_pattern(7), fault_pattern(1234));   // different stream
  Env::Default()->Delete(path);
}

TEST(FaultInjectingEnvTest, TruncatedReadReturnsPrefix) {
  FaultInjectingEnv env;
  std::string path = TempPath("fault_truncate.txt");
  ASSERT_TRUE(env.AtomicWriteFile(path, "0123456789").ok());
  env.TruncateNextRead(4);
  std::string out;
  ASSERT_TRUE(env.ReadFile(path, &out).ok());  // the dangerous case: OK status
  EXPECT_EQ(out, "0123");
  env.Delete(path);
}

TEST(FaultInjectingEnvTest, CrashLeavesDestinationUntouched) {
  FaultInjectingEnv env;
  std::string path = TempPath("fault_crash.txt");
  ASSERT_TRUE(env.AtomicWriteFile(path, "original").ok());

  using WS = FaultInjectingEnv::WriteStep;
  for (WS step : {WS::kOpenTemp, WS::kWriteBody, WS::kSync, WS::kRename}) {
    env.CrashNextWriteAt(step, /*torn_bytes=*/3);
    EXPECT_EQ(env.AtomicWriteFile(path, "replacement").code(),
              Status::Code::kIoError);
    std::string back;
    ASSERT_TRUE(env.ReadFile(path, &back).ok());
    EXPECT_EQ(back, "original") << "crash step " << static_cast<int>(step);
  }
  env.Delete(path);
  env.Delete(path + ".tmp");
}

TEST(FaultInjectingEnvTest, ShortWriteTruncatesPayload) {
  FaultInjectingEnv env;
  std::string path = TempPath("fault_short_write.txt");
  env.ShortNextWrite(5);
  ASSERT_TRUE(env.AtomicWriteFile(path, "0123456789").ok());
  std::string back;
  ASSERT_TRUE(env.ReadFile(path, &back).ok());
  EXPECT_EQ(back, "01234");
  env.Delete(path);
}

TEST(RetryTest, TransientFaultsAreAbsorbed) {
  FaultInjectingEnv env;
  std::string path = TempPath("retry_transient.txt");
  ASSERT_TRUE(env.AtomicWriteFile(path, "payload").ok());
  env.FailNextReads(2);

  obs::Counter& retries =
      obs::MetricsRegistry::Default().GetCounter("io.retries");
  std::uint64_t before = retries.value();

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.jitter = false;  // assert the classic exponential schedule
  std::vector<std::uint64_t> slept;
  policy.sleep = [&](std::uint64_t ns) { slept.push_back(ns); };

  std::string out;
  Status st =
      RetryWithBackoff(policy, [&] { return env.ReadFile(path, &out); });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(out, "payload");
  // Two re-attempts with exponential backoff, visible in the counter.
  EXPECT_EQ(slept, (std::vector<std::uint64_t>{1000000, 2000000}));
  EXPECT_EQ(retries.value(), before + 2);
  env.Delete(path);
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  FaultInjectingEnv env;
  std::string path = TempPath("retry_give_up.txt");
  ASSERT_TRUE(env.AtomicWriteFile(path, "x").ok());
  env.FailNextReads(100);

  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.sleep = [](std::uint64_t) {};
  std::string out;
  Status st =
      RetryWithBackoff(policy, [&] { return env.ReadFile(path, &out); });
  EXPECT_EQ(st.code(), Status::Code::kIoError);
  EXPECT_EQ(env.faults_injected(), 4u);  // one per attempt, then give up
  env.ClearFaults();
  env.Delete(path);
}

TEST(RetryTest, NonTransientErrorsReturnImmediately) {
  int calls = 0;
  RetryPolicy policy;
  policy.sleep = [](std::uint64_t) {};
  Status st = RetryWithBackoff(policy, [&] {
    ++calls;
    return Status::Corruption("bit rot");  // retrying cannot fix this
  });
  EXPECT_EQ(st.code(), Status::Code::kCorruption);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, BackoffIsCapped) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.jitter = false;
  policy.initial_backoff_ns = 40000000;  // 40ms, doubling
  policy.max_backoff_ns = 100000000;     // 100ms cap
  std::vector<std::uint64_t> slept;
  policy.sleep = [&](std::uint64_t ns) { slept.push_back(ns); };
  RetryWithBackoff(policy, [] { return Status::IoError("always"); });
  ASSERT_EQ(slept.size(), 7u);
  EXPECT_EQ(slept[0], 40000000u);
  EXPECT_EQ(slept[1], 80000000u);
  for (std::size_t i = 2; i < slept.size(); ++i) EXPECT_EQ(slept[i], 100000000u);
}

TEST(RetryTest, DecorrelatedJitterDrawsInsideTheEnvelope) {
  // The jittered schedule must stay inside [initial, min(cap, 3*prev)]: the
  // lower bound pins the floor, the upper bound is what decorrelates two
  // clients that failed at the same instant.
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_ns = 1000000;   // 1ms floor
  policy.max_backoff_ns = 50000000;      // 50ms cap
  policy.jitter_seed = 42;               // reproducible stream
  std::vector<std::uint64_t> slept;
  policy.sleep = [&](std::uint64_t ns) { slept.push_back(ns); };
  RetryWithBackoff(policy, [] { return Status::IoError("always"); });
  ASSERT_EQ(slept.size(), 9u);
  std::uint64_t prev = policy.initial_backoff_ns;
  for (std::uint64_t ns : slept) {
    EXPECT_GE(ns, policy.initial_backoff_ns);
    EXPECT_LE(ns, std::min<std::uint64_t>(policy.max_backoff_ns, 3 * prev));
    prev = ns;
  }
  // Same seed => same schedule (the policy is injectable and deterministic).
  std::vector<std::uint64_t> again;
  policy.sleep = [&](std::uint64_t ns) { again.push_back(ns); };
  RetryWithBackoff(policy, [] { return Status::IoError("always"); });
  EXPECT_EQ(slept, again);
}

TEST(RetryTest, JitterSeedsDecorrelateClients) {
  // Two retriers with different seeds must not share a schedule — that is
  // the retry-storm scenario jitter exists to break.
  auto schedule = [](std::uint64_t seed) {
    RetryPolicy policy;
    policy.max_attempts = 8;
    policy.jitter_seed = seed;
    std::vector<std::uint64_t> slept;
    policy.sleep = [&](std::uint64_t ns) { slept.push_back(ns); };
    RetryWithBackoff(policy, [] { return Status::IoError("always"); });
    return slept;
  };
  EXPECT_NE(schedule(1), schedule(2));
}

TEST(RetryTest, UniformHookMakesJitterFullyInjectable) {
  // Deterministic tests can dictate every draw: pinning the hook to the
  // upper bound reproduces the fastest-growing legal schedule.
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ns = 1000000;
  policy.max_backoff_ns = 100000000;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  policy.uniform = [&](std::uint64_t lo, std::uint64_t hi) {
    ranges.emplace_back(lo, hi);
    return hi;
  };
  std::vector<std::uint64_t> slept;
  policy.sleep = [&](std::uint64_t ns) { slept.push_back(ns); };
  RetryWithBackoff(policy, [] { return Status::IoError("always"); });
  ASSERT_EQ(slept.size(), 4u);
  EXPECT_EQ(slept[0], 3000000u);    // 3 * initial
  EXPECT_EQ(slept[1], 9000000u);    // 3 * previous
  EXPECT_EQ(slept[2], 27000000u);
  EXPECT_EQ(slept[3], 81000000u);
  for (const auto& [lo, hi] : ranges) {
    EXPECT_EQ(lo, policy.initial_backoff_ns);
    EXPECT_LE(hi, policy.max_backoff_ns);
  }
}

}  // namespace
}  // namespace humdex
