#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "index/linear_scan.h"
#include "index/rstar_tree.h"
#include "util/random.h"

namespace humdex {
namespace {

Series RandomPoint(Rng* rng, std::size_t dims, double scale = 10.0) {
  Series p(dims);
  for (double& v : p) v = rng->Uniform(-scale, scale);
  return p;
}

TEST(RectTest, MinDistToPoint) {
  Rect r({0, 0}, {2, 2});
  EXPECT_DOUBLE_EQ(r.MinDistSq({1, 1}), 0.0);    // inside
  EXPECT_DOUBLE_EQ(r.MinDistSq({3, 1}), 1.0);    // right
  EXPECT_DOUBLE_EQ(r.MinDistSq({-1, -1}), 2.0);  // corner
  EXPECT_DOUBLE_EQ(r.MinDistSq({5, 6}), 25.0);   // far corner
}

TEST(RectTest, MinDistToRect) {
  Rect a({0, 0}, {1, 1});
  Rect b({2, 0}, {3, 1});
  EXPECT_DOUBLE_EQ(a.MinDistSq(b), 1.0);
  Rect c({0.5, 0.5}, {4, 4});
  EXPECT_DOUBLE_EQ(a.MinDistSq(c), 0.0);  // overlap
  Rect d({3, 3}, {4, 4});
  EXPECT_DOUBLE_EQ(a.MinDistSq(d), 8.0);  // corner gap (2,2)
}

TEST(RectTest, AreaMarginOverlap) {
  Rect a({0, 0}, {2, 3});
  EXPECT_DOUBLE_EQ(a.Area(), 6.0);
  EXPECT_DOUBLE_EQ(a.Margin(), 5.0);
  Rect b({1, 1}, {3, 2});
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 1.0);
  Rect c({5, 5}, {6, 6});
  EXPECT_DOUBLE_EQ(a.OverlapArea(c), 0.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(c), 36.0 - 6.0);
}

TEST(RectTest, EnlargeAndContain) {
  Rect r = Rect::FromPoint({1, 1});
  r.EnlargePoint({3, 0});
  EXPECT_TRUE(r.Contains({2, 0.5}));
  EXPECT_FALSE(r.Contains({0, 0}));
  EXPECT_DOUBLE_EQ(r.Area(), 2.0);
}

TEST(RectTest, FromEnvelopeRepairsTinyInversion) {
  Envelope e;
  e.lower = {1.0, 2.0 + 1e-15};
  e.upper = {2.0, 2.0};
  Rect r = Rect::FromEnvelope(e);
  EXPECT_LE(r.lo[1], r.hi[1]);
}

class RStarTreeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RStarTreeTest, RangeQueryMatchesLinearScan) {
  const std::size_t dims = GetParam();
  Rng rng(1000 + dims);
  RStarTree tree(dims);
  LinearScanIndex scan(dims);
  for (std::int64_t id = 0; id < 2000; ++id) {
    Series p = RandomPoint(&rng, dims);
    tree.Insert(p, id);
    scan.Insert(p, id);
  }
  tree.CheckInvariants();
  for (int q = 0; q < 50; ++q) {
    Series a = RandomPoint(&rng, dims), b = RandomPoint(&rng, dims);
    Series lo(dims), hi(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      lo[d] = std::min(a[d], b[d]);
      hi[d] = std::max(a[d], b[d]);
    }
    Rect query(lo, hi);
    double radius = rng.Uniform(0.0, 5.0);
    auto t = tree.RangeQuery(query, radius);
    auto s = scan.RangeQuery(query, radius);
    std::sort(t.begin(), t.end());
    std::sort(s.begin(), s.end());
    EXPECT_EQ(t, s) << "dims=" << dims;
  }
}

TEST_P(RStarTreeTest, KnnMatchesLinearScan) {
  const std::size_t dims = GetParam();
  Rng rng(2000 + dims);
  RStarTree tree(dims);
  LinearScanIndex scan(dims);
  for (std::int64_t id = 0; id < 1500; ++id) {
    Series p = RandomPoint(&rng, dims);
    tree.Insert(p, id);
    scan.Insert(p, id);
  }
  for (int q = 0; q < 30; ++q) {
    Series query = RandomPoint(&rng, dims);
    for (std::size_t k : {1u, 5u, 20u}) {
      auto t = tree.KnnQuery(query, k);
      auto s = scan.KnnQuery(query, k);
      ASSERT_EQ(t.size(), s.size());
      for (std::size_t i = 0; i < t.size(); ++i) {
        // Distances must agree; ids may differ only on exact ties.
        EXPECT_NEAR(t[i].distance, s[i].distance, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, RStarTreeTest, ::testing::Values(2, 4, 8));

TEST(RStarTreeBasicsTest, EmptyTreeQueries) {
  RStarTree tree(3);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.RangeQuery(Rect({0, 0, 0}, {1, 1, 1}), 10.0).empty());
  EXPECT_TRUE(tree.KnnQuery({0, 0, 0}, 5).empty());
  EXPECT_EQ(tree.Height(), 1u);
}

TEST(RStarTreeBasicsTest, SinglePoint) {
  RStarTree tree(2);
  tree.Insert({1, 2}, 42);
  auto r = tree.RangeQuery(Rect::FromPoint({1, 2}), 0.0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], 42);
  auto nn = tree.KnnQuery({0, 0}, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 42);
  EXPECT_NEAR(nn[0].distance, std::sqrt(5.0), 1e-12);
}

TEST(RStarTreeBasicsTest, GrowsInHeightAndStaysValid) {
  Rng rng(3);
  RStarTree tree(4);
  for (std::int64_t id = 0; id < 5000; ++id) {
    tree.Insert(RandomPoint(&rng, 4), id);
    if (id % 500 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 5000u);
  EXPECT_GE(tree.Height(), 2u);
  EXPECT_GT(tree.NodeCount(), 5000u / 64);
}

TEST(RStarTreeBasicsTest, DuplicatePointsAllRetrieved) {
  RStarTree tree(2);
  for (std::int64_t id = 0; id < 200; ++id) tree.Insert({1.0, 1.0}, id);
  tree.CheckInvariants();
  auto r = tree.RangeQuery(Rect::FromPoint({1.0, 1.0}), 0.0);
  EXPECT_EQ(r.size(), 200u);
}

TEST(RStarTreeBasicsTest, ClusteredDataPruning) {
  // Two far-apart clusters: a query inside one should touch far fewer pages
  // than the tree holds.
  Rng rng(7);
  RStarTree tree(4);
  for (std::int64_t id = 0; id < 3000; ++id) {
    Series p = RandomPoint(&rng, 4, 1.0);
    double offset = (id % 2 == 0) ? 0.0 : 1000.0;
    for (double& v : p) v += offset;
    tree.Insert(p, id);
  }
  IndexStats stats;
  Series center(4, 0.0);
  auto r = tree.RangeQuery(Rect::FromPoint(center), 2.0, &stats);
  EXPECT_GT(r.size(), 0u);
  // The query touches only the near cluster's subtree: well below the ~full
  // traversal a degenerate tree would need (pages for half the points plus
  // the root path).
  EXPECT_LT(stats.page_accesses, tree.NodeCount() * 7 / 10);
}

TEST(RStarTreeBasicsTest, PageAccessesBoundedByNodeCount) {
  Rng rng(9);
  RStarTree tree(2);
  for (std::int64_t id = 0; id < 1000; ++id) tree.Insert(RandomPoint(&rng, 2), id);
  IndexStats stats;
  tree.RangeQuery(Rect({-20, -20}, {20, 20}), 0.0, &stats);
  EXPECT_LE(stats.page_accesses, tree.NodeCount());
  EXPECT_GE(stats.page_accesses, 1u);
}

TEST(RStarTreeBasicsTest, CustomOptionsRespected) {
  RStarOptions opt;
  opt.max_entries = 8;
  opt.min_entries = 3;
  opt.reinsert_count = 2;
  Rng rng(11);
  RStarTree tree(3, opt);
  for (std::int64_t id = 0; id < 500; ++id) tree.Insert(RandomPoint(&rng, 3), id);
  tree.CheckInvariants();
  EXPECT_GE(tree.Height(), 3u);  // small fanout forces depth
}

TEST(RStarTreeBasicsTest, RectangleRangeQuerySemantics) {
  // Query rect with positive radius: points within `radius` of the rect.
  RStarTree tree(2);
  tree.Insert({0.0, 0.0}, 0);
  tree.Insert({5.0, 0.0}, 1);
  tree.Insert({7.1, 0.0}, 2);
  Rect query({1.0, 0.0}, {6.0, 0.0});
  auto r = tree.RangeQuery(query, 1.0);
  std::set<std::int64_t> got(r.begin(), r.end());
  EXPECT_EQ(got, (std::set<std::int64_t>{0, 1}));
  r = tree.RangeQuery(query, 1.2);
  EXPECT_EQ(r.size(), 3u);
}

}  // namespace
}  // namespace humdex
