#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "transform/dft.h"
#include "transform/dwt.h"
#include "transform/paa.h"
#include "transform/svd_transform.h"
#include "ts/dtw.h"
#include "util/fft.h"
#include "util/random.h"

namespace humdex {
namespace {

Series RandomWalk(Rng* rng, std::size_t n) {
  Series x(n);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v += rng->Gaussian();
    x[i] = v;
  }
  return x;
}

std::vector<Series> RandomCorpus(Rng* rng, std::size_t count, std::size_t n) {
  std::vector<Series> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(RandomWalk(rng, n));
  return out;
}

// ---------- PAA ----------

TEST(PaaTest, FeaturesAreScaledFrameMeans) {
  PaaTransform paa(8, 2);
  Series x{1, 2, 3, 4, 10, 10, 10, 10};
  Series f = paa.Apply(x);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_NEAR(f[0], std::sqrt(4.0) * 2.5, 1e-12);
  EXPECT_NEAR(f[1], std::sqrt(4.0) * 10.0, 1e-12);
}

TEST(PaaTest, FastPathMatchesGenericMatrixPath) {
  Rng rng(3);
  PaaTransform paa(64, 8);
  for (int t = 0; t < 20; ++t) {
    Series x = RandomWalk(&rng, 64);
    Series fast = paa.Apply(x);
    Series generic = paa.coefficients().MultiplyVector(x);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(fast[i], generic[i], 1e-9);
  }
}

TEST(PaaTest, EnvelopeFastPathMatchesLemma3Generic) {
  Rng rng(5);
  PaaTransform paa(64, 8);
  const LinearTransform& generic = paa;
  for (int t = 0; t < 10; ++t) {
    Envelope e = BuildEnvelope(RandomWalk(&rng, 64), 6);
    Envelope fast = paa.ApplyToEnvelope(e);
    Envelope gen = generic.LinearTransform::ApplyToEnvelope(e);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_NEAR(fast.lower[i], gen.lower[i], 1e-9);
      EXPECT_NEAR(fast.upper[i], gen.upper[i], 1e-9);
    }
  }
}

TEST(PaaTest, IdentityWhenOutputEqualsInput) {
  PaaTransform paa(8, 8);
  Series x{5, 3, 1, 2, 8, 9, 0, 4};
  EXPECT_EQ(paa.Apply(x), x);
}

// ---------- lower-bounding of every transform for Euclidean distance ----

struct TransformFactory {
  const char* name;
  std::unique_ptr<LinearTransform> (*make)(Rng* rng);
};

std::unique_ptr<LinearTransform> MakePaa(Rng*) {
  return std::make_unique<PaaTransform>(64, 8);
}
std::unique_ptr<LinearTransform> MakeDft(Rng*) {
  return std::make_unique<DftTransform>(64, 8);
}
std::unique_ptr<LinearTransform> MakeDwt(Rng*) {
  return std::make_unique<DwtTransform>(64, 8);
}
std::unique_ptr<LinearTransform> MakeSvd(Rng* rng) {
  return std::make_unique<SvdTransform>(RandomCorpus(rng, 50, 64), 8);
}

class AllTransformsTest : public ::testing::TestWithParam<TransformFactory> {};

TEST_P(AllTransformsTest, LowerBoundsEuclideanDistance) {
  Rng rng(11);
  auto t = GetParam().make(&rng);
  for (int trial = 0; trial < 60; ++trial) {
    Series x = RandomWalk(&rng, 64), y = RandomWalk(&rng, 64);
    double feat = EuclideanDistance(t->Apply(x), t->Apply(y));
    double raw = EuclideanDistance(x, y);
    EXPECT_LE(feat, raw + 1e-9) << GetParam().name;
  }
}

TEST_P(AllTransformsTest, EnvelopeTransformIsContainerInvariant) {
  // Definition 8: z inside e  =>  T(z) inside T(e).
  Rng rng(13);
  auto t = GetParam().make(&rng);
  for (int trial = 0; trial < 20; ++trial) {
    Series y = RandomWalk(&rng, 64);
    Envelope e = BuildEnvelope(y, 5);
    Envelope fe = t->ApplyToEnvelope(e);
    for (int inner = 0; inner < 20; ++inner) {
      Series z(64);
      for (std::size_t i = 0; i < 64; ++i) {
        z[i] = rng.Uniform(e.lower[i], e.upper[i] + 1e-15);
      }
      EXPECT_TRUE(fe.Contains(t->Apply(z), 1e-7)) << GetParam().name;
    }
  }
}

TEST_P(AllTransformsTest, Theorem1NoFalseNegativesBound) {
  // D(T(x), T(Env_k(y))) <= DTW_k(x, y).
  Rng rng(17);
  auto t = GetParam().make(&rng);
  for (std::size_t k : {0u, 3u, 6u, 12u}) {
    for (int trial = 0; trial < 25; ++trial) {
      Series x = RandomWalk(&rng, 64), y = RandomWalk(&rng, 64);
      double lb = ReducedDtwLowerBound(*t, x, y, k);
      double dtw = LdtwDistance(x, y, k);
      EXPECT_LE(lb, dtw + 1e-9) << GetParam().name << " k=" << k;
    }
  }
}

TEST_P(AllTransformsTest, EnvelopeOfDegenerateEnvelopeIsFeatureVector) {
  // When the envelope collapses to the series, its transform collapses to
  // the series' features.
  Rng rng(19);
  auto t = GetParam().make(&rng);
  Series x = RandomWalk(&rng, 64);
  Envelope e{x, x};
  Envelope fe = t->ApplyToEnvelope(e);
  Series f = t->Apply(x);
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(fe.lower[i], f[i], 1e-9);
    EXPECT_NEAR(fe.upper[i], f[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Transforms, AllTransformsTest,
                         ::testing::Values(TransformFactory{"paa", MakePaa},
                                           TransformFactory{"dft", MakeDft},
                                           TransformFactory{"dwt", MakeDwt},
                                           TransformFactory{"svd", MakeSvd}),
                         [](const ::testing::TestParamInfo<TransformFactory>& info) {
                           return info.param.name;
                         });

// ---------- Keogh vs New PAA ----------

TEST(KeoghVsNewPaaTest, NewEnvelopeIsAlwaysInsideKeoghEnvelope) {
  Rng rng(23);
  PaaTransform paa(128, 8);
  for (int trial = 0; trial < 30; ++trial) {
    Envelope e = BuildEnvelope(RandomWalk(&rng, 128), 8);
    Envelope nw = paa.ApplyToEnvelope(e);
    Envelope kg = KeoghPaaEnvelope(e, 8);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_LE(kg.lower[i], nw.lower[i] + 1e-9);
      EXPECT_GE(kg.upper[i], nw.upper[i] - 1e-9);
    }
  }
}

TEST(KeoghVsNewPaaTest, NewBoundDominatesKeoghBound) {
  Rng rng(29);
  PaaTransform paa(128, 8);
  for (int trial = 0; trial < 60; ++trial) {
    Series x = RandomWalk(&rng, 128), y = RandomWalk(&rng, 128);
    double nw = ReducedDtwLowerBound(paa, x, y, 6);
    double kg = KeoghPaaLowerBound(paa, x, y, 6);
    EXPECT_GE(nw, kg - 1e-9);
  }
}

TEST(KeoghVsNewPaaTest, KeoghBoundStillLowerBoundsDtw) {
  Rng rng(31);
  PaaTransform paa(128, 8);
  for (std::size_t k : {0u, 6u, 12u}) {
    for (int trial = 0; trial < 30; ++trial) {
      Series x = RandomWalk(&rng, 128), y = RandomWalk(&rng, 128);
      EXPECT_LE(KeoghPaaLowerBound(paa, x, y, k), LdtwDistance(x, y, k) + 1e-9);
    }
  }
}

// ---------- DFT specifics ----------

TEST(DftTransformTest, FullDimensionPreservesDistances) {
  // With all n features the (boosted) DFT should still lower-bound, and with
  // no boost beyond n/2 pairs it underestimates at most mildly; here we only
  // check the lower-bound property at full width.
  Rng rng(37);
  DftTransform t(32, 32);
  for (int trial = 0; trial < 20; ++trial) {
    Series x = RandomWalk(&rng, 32), y = RandomWalk(&rng, 32);
    EXPECT_LE(EuclideanDistance(t.Apply(x), t.Apply(y)),
              EuclideanDistance(x, y) + 1e-9);
  }
}

TEST(DftTransformTest, FeaturesMatchFftBins) {
  Rng rng(41);
  Series x = RandomWalk(&rng, 64);
  DftTransform t(64, 5);
  Series f = t.Apply(x);
  auto spec = RealFft(x);
  const double unit = 1.0 / std::sqrt(64.0);
  const double sqrt2 = std::sqrt(2.0);
  EXPECT_NEAR(f[0], unit * spec[0].real(), 1e-9);
  EXPECT_NEAR(f[1], unit * sqrt2 * spec[1].real(), 1e-9);
  EXPECT_NEAR(f[2], unit * sqrt2 * spec[1].imag(), 1e-9);
  EXPECT_NEAR(f[3], unit * sqrt2 * spec[2].real(), 1e-9);
  EXPECT_NEAR(f[4], unit * sqrt2 * spec[2].imag(), 1e-9);
}

// ---------- DWT specifics ----------

TEST(DwtTest, HaarTransformIsOrthonormal) {
  Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    Series x = RandomWalk(&rng, 32);
    Series h = HaarTransform(x);
    double ex = 0.0, eh = 0.0;
    for (double v : x) ex += v * v;
    for (double v : h) eh += v * v;
    EXPECT_NEAR(ex, eh, 1e-8);
  }
}

TEST(DwtTest, ConstantSeriesHasOnlyApproximation) {
  Series x(16, 2.0);
  Series h = HaarTransform(x);
  EXPECT_NEAR(h[0], 8.0, 1e-9);  // 2 * sqrt(16)
  for (std::size_t i = 1; i < 16; ++i) EXPECT_NEAR(h[i], 0.0, 1e-12);
}

TEST(DwtTest, FullDimensionTransformIsIsometry) {
  Rng rng(47);
  DwtTransform t(32, 32);
  Series x = RandomWalk(&rng, 32), y = RandomWalk(&rng, 32);
  EXPECT_NEAR(EuclideanDistance(t.Apply(x), t.Apply(y)), EuclideanDistance(x, y),
              1e-8);
}

// ---------- SVD specifics ----------

TEST(SvdTransformTest, OptimalAtZeroWarpOnTrainingData) {
  // On its own training distribution SVD should capture more pairwise
  // distance than PAA at the same dimensionality (it is the Euclidean-optimal
  // linear reduction; paper Fig. 7 at delta = 0).
  Rng rng(53);
  auto corpus = RandomCorpus(&rng, 100, 64);
  SvdTransform svd(corpus, 8);
  PaaTransform paa(64, 8);
  double svd_sum = 0.0, paa_sum = 0.0;
  for (int trial = 0; trial < 100; ++trial) {
    const Series& x = corpus[static_cast<std::size_t>(rng.UniformInt(0, 99))];
    const Series& y = corpus[static_cast<std::size_t>(rng.UniformInt(0, 99))];
    svd_sum += EuclideanDistance(svd.Apply(x), svd.Apply(y));
    paa_sum += EuclideanDistance(paa.Apply(x), paa.Apply(y));
  }
  EXPECT_GT(svd_sum, paa_sum);
}

}  // namespace
}  // namespace humdex
