// ShardedEngine: healthy-path bit-exactness against a single engine,
// partial-result semantics under quarantine, hedged retry, admission
// control, global id routing for online mutation, and the durable
// attach/open/repair/reseed lifecycle.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "music/hummer.h"
#include "music/song_generator.h"
#include "serve/sharded_engine.h"
#include "util/env.h"

namespace humdex {
namespace serve {
namespace {

std::vector<Melody> Corpus(std::size_t count, std::uint64_t seed = 1) {
  SongGenerator gen(seed);
  return gen.GeneratePhrases(count);
}

QbhSystem SingleEngine(const std::vector<Melody>& corpus,
                       QbhOptions opt = QbhOptions()) {
  QbhSystem system(opt);
  for (const Melody& m : corpus) system.AddMelody(m);
  system.Build();
  return system;
}

std::unique_ptr<ShardedEngine> Sharded(const std::vector<Melody>& corpus,
                                       std::size_t shards,
                                       ShardedOptions opts = ShardedOptions()) {
  opts.num_shards = shards;
  auto r = ShardedEngine::Create(corpus, std::move(opts));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

std::vector<Series> HumPanel(const std::vector<Melody>& corpus,
                             std::size_t count) {
  Hummer hummer(HummerProfile::Good(), 99);
  std::vector<Series> hums;
  for (std::size_t i = 0; i < count; ++i) {
    hums.push_back(hummer.Hum(corpus[(i * 7) % corpus.size()]));
  }
  return hums;
}

void ExpectSameMatches(const std::vector<QbhMatch>& a,
                       const std::vector<QbhMatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].distance, b[i].distance);  // bit-identical
  }
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + name;
  ::mkdir(dir.c_str(), 0755);
  Env* env = Env::Default();
  for (std::size_t s = 0; s < 16; ++s) {
    const std::string p = ShardedEngine::ShardPath(dir, s);
    for (const std::string& f : {p, QbhSystem::WalPathFor(p)}) {
      if (env->Exists(f)) {
        Status st = env->Delete(f);
        (void)st;
      }
    }
  }
  return dir;
}

// --- Healthy path: bit-exact equivalence ------------------------------------

TEST(ShardedEngineTest, HealthyAnswersAreBitIdenticalToSingleEngine) {
  auto corpus = Corpus(36);
  QbhSystem single = SingleEngine(corpus);
  auto sharded = Sharded(corpus, 4);

  for (const Series& hum : HumPanel(corpus, 6)) {
    QueryStats sstats;
    auto sh = sharded->Query(hum, 5, QueryOptions(), &sstats);
    auto si = single.Query(hum, 5);
    ExpectSameMatches(sh, si);
    EXPECT_FALSE(sstats.partial);
    EXPECT_EQ(sstats.shards_failed, 0u);

    // Range queries: merge the full result sets, bit for bit.
    if (!si.empty()) {
      const double epsilon = si.back().distance;
      auto rh = sharded->RangeQuery(hum, epsilon);
      auto ri = single.RangeQuery(hum, epsilon);
      ExpectSameMatches(rh, ri);
    }
  }
}

TEST(ShardedEngineTest, ShardCountDoesNotChangeAnswers) {
  auto corpus = Corpus(30);
  QbhSystem single = SingleEngine(corpus);
  for (std::size_t shards : {1u, 2u, 3u, 5u}) {
    auto sharded = Sharded(corpus, shards);
    for (const Series& hum : HumPanel(corpus, 3)) {
      ExpectSameMatches(sharded->Query(hum, 4), single.Query(hum, 4));
    }
  }
}

TEST(ShardedEngineTest, QueryBatchMatchesSerialQueries) {
  auto corpus = Corpus(24);
  auto sharded = Sharded(corpus, 3);
  auto hums = HumPanel(corpus, 5);

  QueryStats aggregate;
  auto batch = sharded->QueryBatch(hums, 4, QueryOptions(), &aggregate);
  ASSERT_EQ(batch.size(), hums.size());
  for (std::size_t i = 0; i < hums.size(); ++i) {
    ExpectSameMatches(batch[i], sharded->Query(hums[i], 4));
  }
  EXPECT_FALSE(aggregate.partial);
}

// --- Partial results: degraded, never wrong ---------------------------------

TEST(ShardedEngineTest, QuarantinedShardYieldsFlaggedPartialNeverWrong) {
  auto corpus = Corpus(32);
  QbhSystem single = SingleEngine(corpus);
  auto sharded = Sharded(corpus, 4);
  const std::size_t quarantined = 2;
  sharded->QuarantineShard(quarantined);
  EXPECT_EQ(sharded->serving_shards(), 3u);

  for (const Series& hum : HumPanel(corpus, 4)) {
    QueryStats stats;
    auto got = sharded->Query(hum, 5, QueryOptions(), &stats);
    EXPECT_TRUE(stats.partial);
    EXPECT_EQ(stats.shards_failed, 1u);

    // Oracle: the full single-engine ranking with the quarantined shard's
    // melodies removed. The partial answer must equal it exactly — degraded
    // coverage, never a wrong id or distance.
    auto full = single.Query(hum, corpus.size());
    std::vector<QbhMatch> expect;
    for (const QbhMatch& m : full) {
      if (static_cast<std::size_t>(m.id) % 4 != quarantined) {
        expect.push_back(m);
      }
      if (expect.size() == 5) break;
    }
    ExpectSameMatches(got, expect);
  }
}

TEST(ShardedEngineTest, AllShardsQuarantinedServesEmptyPartialAnswers) {
  auto corpus = Corpus(12);
  auto sharded = Sharded(corpus, 3);
  for (std::size_t s = 0; s < 3; ++s) sharded->QuarantineShard(s);

  QueryStats stats;
  auto got = sharded->Query(HumPanel(corpus, 1)[0], 5, QueryOptions(), &stats);
  EXPECT_TRUE(got.empty());
  EXPECT_TRUE(stats.partial);
  EXPECT_EQ(stats.shards_failed, 3u);
  EXPECT_EQ(sharded->serving_shards(), 0u);
  EXPECT_EQ(sharded->size(), 0u);
}

TEST(ShardedEngineTest, HedgedRetryAbsorbsOneSlowAttempt) {
  auto corpus = Corpus(20);
  QbhSystem single = SingleEngine(corpus);
  ShardedOptions opts;
  opts.attempts_per_shard = 2;
  int failed_attempts = 0;
  opts.fail_attempt_hook = [&failed_attempts](std::size_t shard, int attempt) {
    if (shard == 1 && attempt == 0) {
      ++failed_attempts;
      return true;  // first attempt on shard 1 "hangs"
    }
    return false;
  };
  auto sharded = Sharded(corpus, 4, std::move(opts));

  const Series hum = HumPanel(corpus, 1)[0];
  QueryStats stats;
  auto got = sharded->Query(hum, 5, QueryOptions(), &stats);
  EXPECT_GT(failed_attempts, 0);
  EXPECT_FALSE(stats.partial);  // the retry covered the slow shard
  ExpectSameMatches(got, single.Query(hum, 5));
}

TEST(ShardedEngineTest, ShardFailingEveryAttemptIsFlaggedPartial) {
  auto corpus = Corpus(20);
  QbhSystem single = SingleEngine(corpus);
  ShardedOptions opts;
  opts.attempts_per_shard = 2;
  opts.fail_attempt_hook = [](std::size_t shard, int) { return shard == 1; };
  auto sharded = Sharded(corpus, 4, std::move(opts));

  const Series hum = HumPanel(corpus, 1)[0];
  QueryStats stats;
  auto got = sharded->Query(hum, 5, QueryOptions(), &stats);
  EXPECT_TRUE(stats.partial);
  EXPECT_EQ(stats.shards_failed, 1u);
  auto full = single.Query(hum, corpus.size());
  std::vector<QbhMatch> expect;
  for (const QbhMatch& m : full) {
    if (static_cast<std::size_t>(m.id) % 4 != 1) expect.push_back(m);
    if (expect.size() == 5) break;
  }
  ExpectSameMatches(got, expect);
}

TEST(ShardedEngineTest, ExpiredDeadlineTruncatesWithoutAborting) {
  auto corpus = Corpus(16);
  auto sharded = Sharded(corpus, 2);
  QueryOptions qopts;
  qopts.deadline = Deadline::Expired();
  QueryStats stats;
  auto got = sharded->Query(HumPanel(corpus, 1)[0], 5, qopts, &stats);
  EXPECT_TRUE(stats.truncated);
  EXPECT_TRUE(got.empty());
}

TEST(ShardedEngineTest, UnservableHumIsRejectedNotAborted) {
  auto corpus = Corpus(8);
  auto sharded = Sharded(corpus, 2);
  QueryStats stats;
  auto got = sharded->Query(Series(), 5, QueryOptions(), &stats);
  EXPECT_TRUE(got.empty());
  EXPECT_TRUE(stats.rejected);
}

TEST(ShardedEngineTest, BatchSheddingWithInjectedProbeIsDeterministic) {
  auto corpus = Corpus(15);
  auto sharded = Sharded(corpus, 3);
  auto hums = HumPanel(corpus, 3);

  QueryOptions qopts;
  qopts.max_queue_depth = 5;
  int calls = 0;
  qopts.queue_depth_probe = [&calls]() -> std::size_t {
    return ++calls == 1 ? 10 : 0;  // only the first submission sees overload
  };
  QueryStats aggregate;
  auto batch = sharded->QueryBatch(hums, 3, qopts, &aggregate);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_TRUE(batch[0].empty());  // shed
  EXPECT_TRUE(aggregate.truncated);
  for (std::size_t i = 1; i < 3; ++i) {
    ExpectSameMatches(batch[i], sharded->Query(hums[i], 3));
  }
}

// --- Online mutation through the global id space ----------------------------

TEST(ShardedEngineTest, InsertRemoveMatchesSingleEngine) {
  auto corpus = Corpus(21);
  QbhSystem single = SingleEngine(corpus);
  auto sharded = Sharded(corpus, 3);

  auto extra = Corpus(6, 777);
  for (std::size_t i = 0; i < extra.size(); ++i) {
    extra[i].name = "extra_" + std::to_string(i);
    auto sid = sharded->Insert(extra[i]);
    auto oid = single.Insert(extra[i]);
    ASSERT_TRUE(sid.ok());
    ASSERT_TRUE(oid.ok());
    EXPECT_EQ(sid.value(), oid.value());
  }
  for (std::int64_t id : {4, 13, 22}) {
    ASSERT_TRUE(sharded->Remove(id).ok());
    ASSERT_TRUE(single.Remove(id).ok());
  }
  EXPECT_EQ(sharded->size(), single.size());
  EXPECT_EQ(sharded->next_id(), single.next_id());
  ASSERT_TRUE(sharded->melody(23).has_value());
  EXPECT_EQ(sharded->melody(23)->name, "extra_2");
  EXPECT_FALSE(sharded->melody(13).has_value());

  auto panel = HumPanel(corpus, 3);
  Hummer hummer(HummerProfile::Good(), 5);
  panel.push_back(hummer.Hum(extra[2]));
  for (const Series& hum : panel) {
    ExpectSameMatches(sharded->Query(hum, 5), single.Query(hum, 5));
  }
}

TEST(ShardedEngineTest, InsertSkipsUnwritableShardAndBurnsItsId) {
  auto corpus = Corpus(12);
  auto sharded = Sharded(corpus, 3);
  // Next global id is 12, which maps to shard 0. Quarantine it.
  sharded->QuarantineShard(0);
  Melody extra = Corpus(1, 31)[0];
  extra.name = "skipped over";
  auto id = sharded->Insert(extra);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 13);  // 12 was burned; 13 maps to shard 1
  EXPECT_FALSE(sharded->melody(12).has_value());
  ASSERT_TRUE(sharded->melody(13).has_value());
  EXPECT_EQ(sharded->melody(13)->name, "skipped over");
  EXPECT_EQ(sharded->next_id(), 14);
}

TEST(ShardedEngineTest, RemoveOnQuarantinedShardFailsCleanly) {
  auto corpus = Corpus(12);
  auto sharded = Sharded(corpus, 3);
  sharded->QuarantineShard(1);
  Status st = sharded->Remove(4);  // 4 % 3 == 1
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(sharded->Remove(5).ok());  // other shards keep taking writes
}

// --- Durability and repair ---------------------------------------------------

TEST(ShardedDurabilityTest, AttachOpenRoundTripsBitExact) {
  auto corpus = Corpus(18);
  const std::string dir = FreshDir("serve_roundtrip");
  QbhSystem oracle = SingleEngine(corpus);
  {
    auto sharded = Sharded(corpus, 3);
    ASSERT_TRUE(sharded->AttachAll(dir).ok());
    auto extra = Corpus(4, 55);
    for (Melody& m : extra) {
      ASSERT_TRUE(sharded->Insert(m).ok());
      ASSERT_TRUE(oracle.Insert(m).ok());
    }
    ASSERT_TRUE(sharded->CheckpointAll().ok());
    auto more = Corpus(2, 56);
    for (Melody& m : more) {  // these live only in the WALs
      ASSERT_TRUE(sharded->Insert(m).ok());
      ASSERT_TRUE(oracle.Insert(m).ok());
    }
  }
  ShardedOptions opts;
  opts.num_shards = 3;
  std::vector<RecoveryStats> recovery;
  auto reopened = ShardedEngine::Open(dir, opts, nullptr, &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& sharded = *reopened.value();
  ASSERT_EQ(recovery.size(), 3u);
  EXPECT_EQ(sharded.next_id(), oracle.next_id());

  for (const Series& hum : HumPanel(corpus, 4)) {
    QueryStats stats;
    auto got = sharded.Query(hum, 5, QueryOptions(), &stats);
    EXPECT_FALSE(stats.partial);
    ExpectSameMatches(got, oracle.Query(hum, 5));
  }
}

TEST(ShardedDurabilityTest, OpenWithMatchingShardCountIsNotPartial) {
  auto corpus = Corpus(18);
  const std::string dir = FreshDir("serve_roundtrip2");
  QbhSystem oracle = SingleEngine(corpus);
  {
    auto sharded = Sharded(corpus, 3);
    ASSERT_TRUE(sharded->AttachAll(dir).ok());
  }
  ShardedOptions opts;
  opts.num_shards = 3;
  auto reopened = ShardedEngine::Open(dir, opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(reopened.value()->shard_status(s).health, ShardHealth::kHealthy);
  }
  for (const Series& hum : HumPanel(corpus, 4)) {
    QueryStats stats;
    auto got = reopened.value()->Query(hum, 5, QueryOptions(), &stats);
    EXPECT_FALSE(stats.partial);
    ExpectSameMatches(got, oracle.Query(hum, 5));
  }
}

TEST(ShardedDurabilityTest, RepairShardRejoinsWithoutStoppingReads) {
  auto corpus = Corpus(18);
  const std::string dir = FreshDir("serve_repair");
  QbhSystem oracle = SingleEngine(corpus);
  ShardedOptions opts;
  opts.num_shards = 3;
  auto r = ShardedEngine::Create(corpus, opts);
  ASSERT_TRUE(r.ok());
  auto& sharded = *r.value();
  ASSERT_TRUE(sharded.AttachAll(dir).ok());

  sharded.QuarantineShard(1);
  const Series hum = HumPanel(corpus, 1)[0];
  QueryStats stats;
  sharded.Query(hum, 5, QueryOptions(), &stats);
  EXPECT_TRUE(stats.partial);

  ASSERT_TRUE(sharded.RepairShard(1).ok());
  EXPECT_EQ(sharded.shard_status(1).health, ShardHealth::kHealthy);
  EXPECT_EQ(sharded.shard_status(1).repairs, 1u);

  stats = QueryStats();
  auto got = sharded.Query(hum, 5, QueryOptions(), &stats);
  EXPECT_FALSE(stats.partial);
  ExpectSameMatches(got, oracle.Query(hum, 5));
}

TEST(ShardedDurabilityTest, RepairIsRefusedForServingShards) {
  auto corpus = Corpus(9);
  const std::string dir = FreshDir("serve_repair2");
  ShardedOptions opts;
  opts.num_shards = 3;
  auto r = ShardedEngine::Create(corpus, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value()->AttachAll(dir).ok());
  EXPECT_FALSE(r.value()->RepairShard(0).ok());  // not quarantined
}

TEST(ShardedDurabilityTest, RepairPadsTheIdFrontierOfARejoinedShard) {
  auto corpus = Corpus(12);
  const std::string dir = FreshDir("serve_pad");
  ShardedOptions opts;
  opts.num_shards = 3;
  auto r = ShardedEngine::Create(corpus, opts);
  ASSERT_TRUE(r.ok());
  auto& sharded = *r.value();
  ASSERT_TRUE(sharded.AttachAll(dir).ok());

  // Take shard 0 out, then keep inserting: ids 12 (shard 0) burns, 13 and
  // 14 land on shards 1 and 2, 15 burns, 16 lands...
  sharded.QuarantineShard(0);
  auto extra = Corpus(4, 91);
  std::vector<std::int64_t> got_ids;
  for (Melody& m : extra) {
    auto id = sharded.Insert(m);
    ASSERT_TRUE(id.ok());
    got_ids.push_back(id.value());
  }
  EXPECT_EQ(got_ids, (std::vector<std::int64_t>{13, 14, 16, 17}));

  // Rejoin shard 0: its frontier must be padded past the burned ids so the
  // next insert routed to it gets the right global id, not an id-skew
  // quarantine.
  ASSERT_TRUE(sharded.RepairShard(0).ok());
  Melody next = Corpus(1, 92)[0];
  auto id = sharded.Insert(next);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 18);  // 18 % 3 == 0: shard 0 took it
  EXPECT_EQ(sharded.shard_status(0).health, ShardHealth::kHealthy);
}

TEST(ShardedDurabilityTest, ReseedRestoresADestroyedShardBitExact) {
  auto corpus = Corpus(15);
  const std::string dir = FreshDir("serve_reseed");
  QbhSystem oracle = SingleEngine(corpus);
  ShardedOptions opts;
  opts.num_shards = 3;
  auto r = ShardedEngine::Create(corpus, opts);
  ASSERT_TRUE(r.ok());
  auto& sharded = *r.value();
  ASSERT_TRUE(sharded.AttachAll(dir).ok());

  // Destroy shard 2's storage beyond salvage and quarantine it.
  Env* env = Env::Default();
  ASSERT_TRUE(
      env->AtomicWriteFile(ShardedEngine::ShardPath(dir, 2), "garbage").ok());
  sharded.QuarantineShard(2);
  EXPECT_FALSE(sharded.RepairShard(2).ok());

  // Reseed from the authoritative corpus (the replica-copy path).
  std::vector<std::pair<std::int64_t, Melody>> rows;
  for (std::size_t g = 2; g < corpus.size(); g += 3) {
    rows.emplace_back(static_cast<std::int64_t>(g), corpus[g]);
  }
  ASSERT_TRUE(sharded.ReseedShard(2, std::move(rows)).ok());
  EXPECT_EQ(sharded.shard_status(2).health, ShardHealth::kHealthy);

  for (const Series& hum : HumPanel(corpus, 4)) {
    QueryStats stats;
    auto got = sharded.Query(hum, 5, QueryOptions(), &stats);
    EXPECT_FALSE(stats.partial);
    ExpectSameMatches(got, oracle.Query(hum, 5));
  }
}

TEST(ShardedEngineTest, HealthNamesAreStable) {
  EXPECT_STREQ(ShardHealthName(ShardHealth::kHealthy), "healthy");
  EXPECT_STREQ(ShardHealthName(ShardHealth::kDegraded), "degraded");
  EXPECT_STREQ(ShardHealthName(ShardHealth::kQuarantined), "quarantined");
}

TEST(ShardedEngineTest, CreateRejectsImpossibleShapes) {
  EXPECT_FALSE(ShardedEngine::Create({}, ShardedOptions()).ok());
  ShardedOptions opts;
  opts.num_shards = 10;
  EXPECT_FALSE(ShardedEngine::Create(Corpus(5), opts).ok());
}

}  // namespace
}  // namespace serve
}  // namespace humdex
