#include <gtest/gtest.h>

#include <cmath>

#include "ts/normal_form.h"
#include "ts/time_series.h"
#include "util/random.h"

namespace humdex {
namespace {

TEST(DistanceTest, EuclideanKnownValues) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1, 1, 1}, {1, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(SquaredEuclideanDistance({0, 0}, {3, 4}), 25.0);
}

TEST(DistanceTest, LpGeneralizesEuclidean) {
  Series x{1, 2, 3}, y{4, 6, 3};
  EXPECT_NEAR(LpDistance(x, y, 2.0), EuclideanDistance(x, y), 1e-12);
  EXPECT_DOUBLE_EQ(LpDistance(x, y, 1.0), 7.0);
}

TEST(DistanceTest, TriangleInequalityRandom) {
  Rng rng(3);
  for (int t = 0; t < 100; ++t) {
    Series a(16), b(16), c(16);
    for (std::size_t i = 0; i < 16; ++i) {
      a[i] = rng.Gaussian();
      b[i] = rng.Gaussian();
      c[i] = rng.Gaussian();
    }
    EXPECT_LE(EuclideanDistance(a, c),
              EuclideanDistance(a, b) + EuclideanDistance(b, c) + 1e-9);
  }
}

TEST(SeriesOpsTest, MeanMinMax) {
  Series x{3, 1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(SeriesMean(x), 2.8);
  EXPECT_DOUBLE_EQ(SeriesMin(x), 1.0);
  EXPECT_DOUBLE_EQ(SeriesMax(x), 5.0);
  EXPECT_EQ(SeriesMean({}), 0.0);
}

TEST(NormalFormTest, SubtractMeanCentersSeries) {
  Series x{1, 2, 3, 4};
  Series c = SubtractMean(x);
  EXPECT_NEAR(SeriesMean(c), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(c[0], -1.5);
  EXPECT_DOUBLE_EQ(c[3], 1.5);
}

TEST(NormalFormTest, SubtractMeanShiftInvariance) {
  // The paper's shift invariance: x and x + const share a normal form.
  Rng rng(5);
  Series x(32);
  for (double& v : x) v = rng.Uniform(50, 70);
  Series shifted = x;
  for (double& v : shifted) v += 7.3;
  Series a = SubtractMean(x), b = SubtractMean(shifted);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-10);
}

TEST(NormalFormTest, UpsampleRepeatsValues) {
  Series x{1, 2, 3};
  Series u = Upsample(x, 3);
  Series expect{1, 1, 1, 2, 2, 2, 3, 3, 3};
  EXPECT_EQ(u, expect);
  EXPECT_EQ(Upsample(x, 1), x);
}

TEST(NormalFormTest, UtwNormalFormMultipleLength) {
  // When target is a multiple of n, UTW normal form equals upsampling.
  Series x{5, 7, 9};
  EXPECT_EQ(UtwNormalForm(x, 9), Upsample(x, 3));
}

TEST(NormalFormTest, UtwNormalFormNonMultiple) {
  Series x{10, 20};
  Series out = UtwNormalForm(x, 5);
  // Indices 0,1 -> x[0]; 2 -> x[0*2... floor(2*2/5)=0]? floor(4/5)=0; 3,4 -> x[1].
  ASSERT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(out[0], 10);
  EXPECT_DOUBLE_EQ(out[1], 10);
  EXPECT_DOUBLE_EQ(out[2], 10);
  EXPECT_DOUBLE_EQ(out[3], 20);
  EXPECT_DOUBLE_EQ(out[4], 20);
}

TEST(NormalFormTest, UtwPreservesFirstAndLast) {
  Rng rng(7);
  for (int t = 0; t < 20; ++t) {
    std::size_t n = static_cast<std::size_t>(rng.UniformInt(2, 40));
    Series x(n);
    for (double& v : x) v = rng.Gaussian();
    Series out = UtwNormalForm(x, 128);
    EXPECT_DOUBLE_EQ(out.front(), x.front());
    EXPECT_DOUBLE_EQ(out.back(), x.back());
  }
}

TEST(NormalFormTest, TempoInvariance) {
  // A series and its 2x upsample (same melody, half tempo) share the UTW
  // normal form — the paper's tempo invariance.
  Series x{1, 3, 2, 5, 4, 4, 2, 1};
  Series slow = Upsample(x, 2);
  EXPECT_EQ(UtwNormalForm(x, 64), UtwNormalForm(slow, 64));
}

TEST(NormalFormTest, FullNormalFormCombinesBoth) {
  Series x{60, 62, 64, 62};
  Series transposed_slow = Upsample(x, 3);
  for (double& v : transposed_slow) v += 5.0;
  Series a = NormalForm(x, 48);
  Series b = NormalForm(transposed_slow, 48);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-10);
  EXPECT_NEAR(SeriesMean(a), 0.0, 1e-12);
}

TEST(NormalFormTest, DownsamplingPath) {
  // target_len smaller than n picks a subsequence.
  Series x{1, 2, 3, 4, 5, 6, 7, 8};
  Series out = UtwNormalForm(x, 4);
  Series expect{1, 3, 5, 7};
  EXPECT_EQ(out, expect);
}

}  // namespace
}  // namespace humdex
