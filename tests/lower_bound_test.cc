#include <gtest/gtest.h>

#include <cmath>

#include "ts/dtw.h"
#include "ts/lower_bound.h"
#include "util/random.h"

namespace humdex {
namespace {

Series RandomWalk(Rng* rng, std::size_t n) {
  Series x(n);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v += rng->Gaussian();
    x[i] = v;
  }
  return x;
}

class LowerBoundPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LowerBoundPropertyTest, LbKeoghLowerBoundsBandedDtw) {
  const std::size_t k = GetParam();
  Rng rng(100 + k);
  for (int trial = 0; trial < 40; ++trial) {
    Series x = RandomWalk(&rng, 64), y = RandomWalk(&rng, 64);
    double lb = LbKeogh(x, y, k);
    double dtw = LdtwDistance(x, y, k);
    EXPECT_LE(lb, dtw + 1e-9) << "k=" << k;
  }
}

TEST_P(LowerBoundPropertyTest, LbYiLowerBoundsBandedDtw) {
  const std::size_t k = GetParam();
  Rng rng(200 + k);
  for (int trial = 0; trial < 40; ++trial) {
    Series x = RandomWalk(&rng, 64), y = RandomWalk(&rng, 64);
    EXPECT_LE(LbYi(x, y), LdtwDistance(x, y, k) + 1e-9);
    EXPECT_LE(LbYiSymmetric(x, y), LdtwDistance(x, y, k) + 1e-9);
  }
}

TEST_P(LowerBoundPropertyTest, LbKimLowerBoundsFullDtw) {
  const std::size_t k = GetParam();
  Rng rng(300 + k);
  for (int trial = 0; trial < 40; ++trial) {
    Series x = RandomWalk(&rng, 48), y = RandomWalk(&rng, 48);
    EXPECT_LE(LbKim(x, y), DtwDistance(x, y) + 1e-9);
    EXPECT_LE(LbKim(x, y), LdtwDistance(x, y, k) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(BandWidths, LowerBoundPropertyTest,
                         ::testing::Values(0, 1, 3, 6, 12, 25));

TEST(LowerBoundTest, LbKeoghTighterThanLbYi) {
  // The envelope bound dominates the global bound (it uses more information).
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    Series x = RandomWalk(&rng, 64), y = RandomWalk(&rng, 64);
    // LbYi(x, y) equals LbKeogh with infinite k; finite k is tighter.
    EXPECT_GE(LbKeogh(x, y, 6), LbYi(x, y) - 1e-9);
  }
}

TEST(LowerBoundTest, LbKeoghZeroForIdentical) {
  Rng rng(9);
  Series x = RandomWalk(&rng, 32);
  EXPECT_DOUBLE_EQ(LbKeogh(x, x, 4), 0.0);
}

TEST(LowerBoundTest, LbKeoghWithZeroRadiusIsEuclidean) {
  Rng rng(11);
  Series x = RandomWalk(&rng, 32), y = RandomWalk(&rng, 32);
  EXPECT_NEAR(LbKeogh(x, y, 0), EuclideanDistance(x, y), 1e-9);
}

TEST(LowerBoundTest, LbKeoghDecreasesWithRadius) {
  Rng rng(13);
  Series x = RandomWalk(&rng, 64), y = RandomWalk(&rng, 64);
  double prev = LbKeogh(x, y, 0);
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    double lb = LbKeogh(x, y, k);
    EXPECT_LE(lb, prev + 1e-12);
    prev = lb;
  }
}

TEST(LowerBoundTest, LbYiWithEnvelopeIntuition) {
  // Points of x inside [min(y), max(y)] contribute nothing.
  Series y{0.0, 10.0};
  Series x{5.0, 12.0, -3.0, 7.0};
  // Contributions: 0, 2, 3, 0.
  EXPECT_NEAR(LbYi(x, y), std::sqrt(4.0 + 9.0), 1e-12);
}

TEST(LowerBoundTest, LbKimExactComponents) {
  Series x{1, 5, 2}, y{4, 7, 0};
  // first diff 3, last diff 2, max diff |5-7|=2, min diff |1-0|=1.
  EXPECT_DOUBLE_EQ(LbKim(x, y), 3.0);
}

TEST(LowerBoundTest, PrecomputedEnvelopeOverloadAgrees) {
  Rng rng(15);
  Series x = RandomWalk(&rng, 40), y = RandomWalk(&rng, 40);
  Envelope env = BuildEnvelope(y, 5);
  EXPECT_DOUBLE_EQ(LbKeogh(x, env), LbKeogh(x, y, 5));
}

}  // namespace
}  // namespace humdex
