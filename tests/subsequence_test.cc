#include <gtest/gtest.h>

#include <cmath>

#include "gemini/subsequence.h"
#include "music/hummer.h"
#include "music/song_generator.h"

namespace humdex {
namespace {

TEST(CutWindowsTest, ShortSongIsOneWindow) {
  Melody song;
  song.notes = {{60, 2}, {62, 2}};
  auto windows = CutWindows(song, 16.0, 4.0);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].second, 0.0);
  EXPECT_EQ(windows[0].first.size(), 2u);
}

TEST(CutWindowsTest, WindowsCoverSongAtStride) {
  Melody song;
  for (int i = 0; i < 32; ++i) song.notes.push_back({60.0 + (i % 5), 1.0});
  auto windows = CutWindows(song, 16.0, 4.0);
  // Offsets 0, 4, 8, 12, 16 (16+16=32 <= 32).
  ASSERT_EQ(windows.size(), 5u);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    EXPECT_DOUBLE_EQ(windows[w].second, 4.0 * static_cast<double>(w));
    EXPECT_NEAR(windows[w].first.TotalBeats(), 16.0, 1e-9);
  }
}

TEST(CutWindowsTest, NotesSplitAtBorders) {
  Melody song;
  song.notes = {{60, 10}, {67, 10}};
  auto windows = CutWindows(song, 8.0, 4.0);
  // Window at offset 4 covers [4, 12): 6 beats of 60, 2 beats of 67.
  ASSERT_GE(windows.size(), 2u);
  const Melody& w1 = windows[1].first;
  ASSERT_EQ(w1.size(), 2u);
  EXPECT_DOUBLE_EQ(w1.notes[0].pitch, 60.0);
  EXPECT_NEAR(w1.notes[0].duration, 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(w1.notes[1].pitch, 67.0);
  EXPECT_NEAR(w1.notes[1].duration, 2.0, 1e-9);
}

TEST(SubsequenceIndexTest, FindsHummedFragmentInsideSong) {
  SongGenerator gen(99);
  SubsequenceIndex index;
  std::vector<Melody> songs;
  for (int s = 0; s < 20; ++s) {
    Melody song = gen.GenerateSong(s);
    songs.push_back(song);
    index.AddSong(std::move(song));
  }
  index.Build();
  EXPECT_EQ(index.song_count(), 20u);
  EXPECT_GT(index.window_count(), 20u);

  // Hum a 16-beat fragment from the middle of song 7.
  auto fragments = CutWindows(songs[7], 16.0, 4.0);
  ASSERT_GT(fragments.size(), 4u);
  const auto& [fragment, offset] = fragments[4];
  Hummer hummer(HummerProfile::Good(), 5);
  Series hum = hummer.Hum(fragment);

  auto matches = index.Query(hum, 3);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].song_id, 7);
  // The located offset should be near where the fragment was cut.
  EXPECT_NEAR(matches[0].offset_beats, offset, 8.0);
}

TEST(SubsequenceIndexTest, DedupCollapsesAdjacentWindows) {
  SongGenerator gen(7);
  SubsequenceIndex index;
  for (int s = 0; s < 5; ++s) index.AddSong(gen.GenerateSong(s));
  index.Build();

  Melody song0_again = SongGenerator(7).GenerateSong(0);
  auto fragments = CutWindows(song0_again, 16.0, 4.0);
  Hummer hummer(HummerProfile::Perfect(), 3);
  Series hum = hummer.Hum(fragments[2].first);

  auto dedup = index.Query(hum, 5, /*dedup_songs=*/true);
  std::set<std::int64_t> ids;
  for (const auto& m : dedup) EXPECT_TRUE(ids.insert(m.song_id).second);

  auto raw = index.Query(hum, 5, /*dedup_songs=*/false);
  EXPECT_EQ(raw.size(), 5u);
}

TEST(SubsequenceIndexTest, PerfectFragmentScoresNearZero) {
  SongGenerator gen(55);
  SubsequenceIndex index;
  Melody song = gen.GenerateSong(0);
  index.AddSong(song);
  for (int s = 1; s < 10; ++s) index.AddSong(gen.GenerateSong(s));
  index.Build();

  auto fragments = CutWindows(song, 16.0, 4.0);
  Hummer hummer(HummerProfile::Perfect(), 1);
  Series hum = hummer.Hum(fragments[0].first);
  auto matches = index.Query(hum, 1);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].song_id, 0);
  EXPECT_LT(matches[0].distance, 2.0);
}

TEST(SubsequenceIndexTest, MatchesCarrySongNames) {
  SubsequenceIndex index;
  Melody song;
  song.name = "yellow_submarine";
  for (int i = 0; i < 40; ++i) song.notes.push_back({60.0 + (i * 3) % 7, 1.0});
  index.AddSong(song);
  index.Build();
  Hummer hummer(HummerProfile::Perfect(), 2);
  auto matches = index.Query(hummer.Hum(song), 1);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].song_name, "yellow_submarine");
}

}  // namespace
}  // namespace humdex
