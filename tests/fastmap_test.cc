#include <gtest/gtest.h>

#include <cmath>

#include "gemini/fastmap.h"
#include "ts/dtw.h"
#include "ts/time_series.h"
#include "util/random.h"

namespace humdex {
namespace {

Series RandomWalk(Rng* rng, std::size_t n) {
  Series x(n);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v += rng->Gaussian();
    x[i] = v;
  }
  return x;
}

TEST(FastMapTest, EmbeddingHasRequestedDims) {
  Rng rng(3);
  std::vector<Series> corpus;
  for (int i = 0; i < 50; ++i) corpus.push_back(RandomWalk(&rng, 64));
  FastMapEmbedding fm(corpus, 6, 4, 1);
  EXPECT_EQ(fm.dims(), 6u);
  EXPECT_EQ(fm.Embed(corpus[0]).size(), 6u);
}

TEST(FastMapTest, EmbeddingRoughlyPreservesDistances) {
  // FastMap is a heuristic: embedded distances should correlate with DTW
  // (rank correlation over pairs clearly positive) without any guarantee.
  Rng rng(5);
  std::vector<Series> corpus;
  for (int i = 0; i < 60; ++i) corpus.push_back(RandomWalk(&rng, 64));
  FastMapEmbedding fm(corpus, 8, 4, 2);
  std::vector<Series> embedded;
  for (const Series& s : corpus) embedded.push_back(fm.Embed(s));

  int concordant = 0, discordant = 0;
  Rng pair_rng(7);
  for (int t = 0; t < 300; ++t) {
    std::size_t a = pair_rng.NextBounded(60), b = pair_rng.NextBounded(60);
    std::size_t c = pair_rng.NextBounded(60), d = pair_rng.NextBounded(60);
    if (a == b || c == d) continue;
    double dtw1 = LdtwDistance(corpus[a], corpus[b], 4);
    double dtw2 = LdtwDistance(corpus[c], corpus[d], 4);
    double emb1 = EuclideanDistance(embedded[a], embedded[b]);
    double emb2 = EuclideanDistance(embedded[c], embedded[d]);
    if ((dtw1 < dtw2) == (emb1 < emb2)) {
      ++concordant;
    } else {
      ++discordant;
    }
  }
  EXPECT_GT(concordant, discordant * 2);
}

TEST(FastMapTest, NotLowerBoundingUnderDtw) {
  // The paper's §2 point, as an executable fact: the FastMap embedding
  // distance EXCEEDS the true DTW distance for some pairs (so filtering with
  // it loses true matches), unlike every envelope-transform bound.
  Rng rng(9);
  std::vector<Series> corpus;
  for (int i = 0; i < 80; ++i) corpus.push_back(RandomWalk(&rng, 64));
  FastMapEmbedding fm(corpus, 8, 6, 3);
  std::vector<Series> embedded;
  for (const Series& s : corpus) embedded.push_back(fm.Embed(s));

  int overestimates = 0;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    for (std::size_t j = i + 1; j < corpus.size(); ++j) {
      double dtw = LdtwDistance(corpus[i], corpus[j], 6);
      double emb = EuclideanDistance(embedded[i], embedded[j]);
      if (emb > dtw + 1e-9) ++overestimates;
    }
  }
  EXPECT_GT(overestimates, 0);
}

TEST(FastMapTest, SelfDistanceNearZero) {
  Rng rng(11);
  std::vector<Series> corpus;
  for (int i = 0; i < 40; ++i) corpus.push_back(RandomWalk(&rng, 64));
  FastMapEmbedding fm(corpus, 4, 4, 4);
  // The same series embeds to the same point regardless of call order.
  Series e1 = fm.Embed(corpus[10]);
  Series e2 = fm.Embed(corpus[10]);
  EXPECT_NEAR(EuclideanDistance(e1, e2), 0.0, 1e-12);
}

TEST(FastMapTest, DegenerateCorpusOfIdenticalSeries) {
  std::vector<Series> corpus(10, Series(32, 1.0));
  FastMapEmbedding fm(corpus, 3, 2, 5);
  Series e = fm.Embed(corpus[0]);
  for (double v : e) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace humdex
