// Corruption robustness: no damaged database input may throw or abort — every
// failure is a Status — and a crash at any point during a save must leave the
// previous database bit-identical on disk. Run under -DHUMDEX_SANITIZE=address
// (see scripts/check.sh) to also catch latent memory errors on these paths.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "music/hummer.h"
#include "music/song_generator.h"
#include "obs/metrics.h"
#include "qbh/storage.h"
#include "util/env.h"

namespace humdex {
namespace {

QbhSystem MakeSystem(std::size_t corpus_size, std::uint64_t seed = 3) {
  SongGenerator gen(seed);
  QbhSystem system;
  for (Melody& m : gen.GeneratePhrases(corpus_size)) {
    system.AddMelody(std::move(m));
  }
  system.Build();
  return system;
}

std::string SmallDbText() {
  static const std::string text = SerializeQbhDatabase(MakeSystem(3));
  return text;
}

// Strip the v2 trailer and rewrite the header: the legacy format this release
// must keep loading.
std::string ToV1(const std::string& v2_text) {
  std::string body = v2_text.substr(0, v2_text.rfind("crc32c "));
  std::size_t header_end = body.find('\n');
  return "humdex-db v1" + body.substr(header_end);
}

// A small v3 binary image (DESIGN.md §14) with every derived section
// populated: the corruption matrix below must detect damage to any of them.
std::string SmallDbV3Bytes() {
  static const std::string image = [] {
    QbhOptions opt;
    opt.format = CheckpointFormat::kV3Binary;
    SongGenerator gen(3);
    QbhSystem system(opt);
    for (Melody& m : gen.GeneratePhrases(3)) {
      system.AddMelody(std::move(m));
    }
    system.Build();
    return SerializeQbhDatabase(system);
  }();
  return image;
}

TEST(CorruptionMatrixTest, EverysingleBitFlipIsDetected) {
  const std::string good = SmallDbText();
  ASSERT_TRUE(ParseQbhDatabase(good).ok());

  for (std::size_t i = 0; i < good.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = good;
      bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
      Result<QbhSystem> r = ParseQbhDatabase(bad);  // must not throw or abort
      EXPECT_FALSE(r.ok()) << "undetected flip: byte " << i << " bit " << bit;
    }
  }
}

TEST(CorruptionMatrixTest, EveryTruncationIsDetected) {
  const std::string good = SmallDbText();
  // Every proper prefix, which covers each section boundary (mid-header,
  // after options, inside a melody block, inside the CRC trailer) and the
  // empty file. The one exception is dropping only the final newline: no
  // byte of data or checksum is lost, and the parser accepts it.
  for (std::size_t len = 0; len + 1 < good.size(); ++len) {
    Result<QbhSystem> r = ParseQbhDatabase(good.substr(0, len));
    EXPECT_FALSE(r.ok()) << "undetected truncation at byte " << len;
  }
  Result<QbhSystem> no_final_newline =
      ParseQbhDatabase(good.substr(0, good.size() - 1));
  EXPECT_TRUE(no_final_newline.ok());
}

TEST(CorruptionMatrixTest, V3EverySingleBitFlipIsDetected) {
  // Every header byte (magic, counts, reserved slots, table, zero padding),
  // every section byte, and every alignment-gap byte is covered by a check:
  // the table CRC, a per-section CRC, or an explicit must-be-zero scan.
  const std::string good = SmallDbV3Bytes();
  ASSERT_TRUE(ParseQbhDatabase(good).ok());

  for (std::size_t i = 0; i < good.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = good;
      bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
      Result<QbhSystem> r = ParseQbhDatabase(bad);  // must not throw or abort
      EXPECT_FALSE(r.ok()) << "undetected flip: byte " << i << " bit " << bit;
    }
  }
}

TEST(CorruptionMatrixTest, V3EveryTruncationIsDetected) {
  // The header records the exact file size, so unlike v2 (whose final
  // newline is slack) every proper prefix of a v3 image must be rejected.
  const std::string good = SmallDbV3Bytes();
  for (std::size_t len = 0; len < good.size(); ++len) {
    Result<QbhSystem> r = ParseQbhDatabase(good.substr(0, len));
    EXPECT_FALSE(r.ok()) << "undetected truncation at byte " << len;
  }
}

TEST(CorruptionMatrixTest, V3GarbageAppendedIsDetected) {
  EXPECT_FALSE(ParseQbhDatabase(SmallDbV3Bytes() + "trailing junk").ok());
  EXPECT_FALSE(ParseQbhDatabase(SmallDbV3Bytes() + std::string(4096, '\0')).ok());
}

TEST(CorruptionMatrixTest, V3SalvageNeverAbortsUnderBitFlips) {
  // Salvage on a strided sample of single-bit flips: any outcome is
  // acceptable (full recovery, partial recovery, or a clean failure Status)
  // except a throw, an abort, or recovering more melodies than exist.
  const std::string good = SmallDbV3Bytes();
  for (std::size_t i = 0; i < good.size(); i += 487) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = good;
      bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
      SalvageReport report;
      Result<QbhSystem> r = ParseQbhDatabaseSalvage(bad, &report);
      if (r.ok()) {
        EXPECT_LE(r.value().size(), 3u) << "byte " << i << " bit " << bit;
        EXPECT_LE(report.melodies_loaded, 3u);
      }
    }
  }
}

TEST(CorruptionMatrixTest, GarbageAppendedAfterTrailerIsDetected) {
  EXPECT_FALSE(ParseQbhDatabase(SmallDbText() + "trailing junk\n").ok());
}

TEST(CorruptionMatrixTest, DetectionIncrementsCorruptionCounter) {
  obs::Counter& c =
      obs::MetricsRegistry::Default().GetCounter("storage.corruption_detected");
  std::uint64_t before = c.value();
  std::string bad = SmallDbText();
  bad[bad.size() / 2] ^= 0x01;
  EXPECT_FALSE(ParseQbhDatabase(bad).ok());
  EXPECT_GT(c.value(), before);
}

TEST(CorruptionMatrixTest, TruncatedReadSurfacesAsCorruptionNotData) {
  // The silent-fread failure mode: the Env returns a prefix of the file with
  // an OK status. The CRC trailer is what catches it.
  FaultInjectingEnv env;
  std::string path = ::testing::TempDir() + "/truncated_read.db";
  QbhSystem system = MakeSystem(3);
  ASSERT_TRUE(SaveQbhDatabase(path, system, &env).ok());

  env.TruncateNextRead(SmallDbText().size() / 2);
  Result<QbhSystem> r = LoadQbhDatabase(path, &env);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  env.Delete(path);
}

TEST(CorruptionMatrixTest, V1WithoutTrailerStillLoads) {
  Result<QbhSystem> r = ParseQbhDatabase(ToV1(SmallDbText()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(CorruptionMatrixTest, V1CannotAbortThroughSchemeConstraints) {
  // Valid-looking but mutually inconsistent options in an unchecksummed v1
  // file must fail with a Status, not a CHECK-abort inside Build().
  const char* cases[] = {
      // PAA needs normal_len % feature_dim == 0.
      "humdex-db v1\noption normal_len 10\noption feature_dim 4\n"
      "option scheme new_paa\nmelody a\n60 1\nend\n",
      // DWT needs a power-of-two normal_len.
      "humdex-db v1\noption normal_len 12\noption feature_dim 4\n"
      "option scheme dwt\nmelody a\n60 1\nend\n",
      // SVD cannot fit on a single melody.
      "humdex-db v1\noption scheme svd\nmelody a\n60 1\nend\n",
      // normal_len < feature_dim.
      "humdex-db v1\noption normal_len 4\noption feature_dim 8\n"
      "melody a\n60 1\nend\n",
      // Absurd sizes must be rejected before they can OOM.
      "humdex-db v1\noption normal_len 99999999999\nmelody a\n60 1\nend\n",
      "humdex-db v1\noption warping_width nan\nmelody a\n60 1\nend\n",
      "humdex-db v1\noption samples_per_beat -1\nmelody a\n60 1\nend\n",
  };
  for (const char* text : cases) {
    Result<QbhSystem> r = ParseQbhDatabase(text);
    EXPECT_FALSE(r.ok()) << text;
  }
}

TEST(CrashSafetyTest, CrashAtEveryWriteStepPreservesOldDatabase) {
  FaultInjectingEnv env;
  std::string path = ::testing::TempDir() + "/crash_safety.db";
  QbhSystem db1 = MakeSystem(3, 3);
  QbhSystem db2 = MakeSystem(5, 17);

  ASSERT_TRUE(SaveQbhDatabase(path, db1, &env).ok());
  std::string db1_bytes;
  ASSERT_TRUE(env.ReadFile(path, &db1_bytes).ok());

  using WS = FaultInjectingEnv::WriteStep;
  for (WS step : {WS::kOpenTemp, WS::kWriteBody, WS::kSync, WS::kRename}) {
    env.CrashNextWriteAt(step, /*torn_bytes=*/db1_bytes.size() / 3);
    Status st = SaveQbhDatabase(path, db2, &env);
    EXPECT_EQ(st.code(), Status::Code::kIoError)
        << "crash step " << static_cast<int>(step);

    // The previous database is still there, bit for bit, and loadable.
    std::string after;
    ASSERT_TRUE(env.ReadFile(path, &after).ok());
    EXPECT_EQ(after, db1_bytes) << "crash step " << static_cast<int>(step);
    Result<QbhSystem> r = LoadQbhDatabase(path, &env);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().size(), db1.size());
  }

  // With faults cleared the pending save goes through.
  ASSERT_TRUE(SaveQbhDatabase(path, db2, &env).ok());
  Result<QbhSystem> r2 = LoadQbhDatabase(path, &env);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().size(), db2.size());
  env.Delete(path);
  env.Delete(path + ".tmp");
}

TEST(CrashSafetyTest, TransientReadFaultsAreRetriedOnLoad) {
  FaultInjectingEnv env;
  std::string path = ::testing::TempDir() + "/transient_load.db";
  ASSERT_TRUE(SaveQbhDatabase(path, MakeSystem(3), &env).ok());

  env.FailNextReads(2);  // default policy retries up to 3 attempts
  Result<QbhSystem> r = LoadQbhDatabase(path, &env);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 3u);
  env.Delete(path);
}

TEST(SalvageTest, CleanDatabaseSalvagesCompletely) {
  SalvageReport report;
  Result<QbhSystem> r = ParseQbhDatabaseSalvage(SmallDbText(), &report);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(report.crc_ok);
  EXPECT_EQ(report.melodies_loaded, 3u);
  EXPECT_EQ(report.melodies_dropped, 0u);
}

TEST(SalvageTest, RecoversIntactMelodiesAroundADamagedBlock) {
  // Break one note line inside the second melody block: the strict parser
  // rejects the file (CRC + parse), salvage recovers the other melodies.
  std::string text = SmallDbText();
  std::size_t second = text.find("melody ", text.find("melody ") + 1);
  ASSERT_NE(second, std::string::npos);
  std::size_t note = text.find('\n', second) + 1;
  text.replace(note, 2, "zz");

  EXPECT_FALSE(ParseQbhDatabase(text).ok());

  SalvageReport report;
  Result<QbhSystem> r = ParseQbhDatabaseSalvage(text, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(report.crc_ok);
  EXPECT_EQ(report.melodies_loaded, 2u);
  EXPECT_EQ(report.melodies_dropped, 1u);
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(SalvageTest, MalformedOptionsFallBackToDefaults) {
  SalvageReport report;
  Result<QbhSystem> r = ParseQbhDatabaseSalvage(
      "humdex-db v1\n"
      "option normal_len banana\n"
      "option warping_width 0.2\n"
      "option bogus_key 1\n"
      "melody a\n60 1\n62 1\nend\n",
      &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().options().normal_len, QbhOptions().normal_len);
  EXPECT_DOUBLE_EQ(r.value().options().warping_width, 0.2);  // good line kept
  EXPECT_EQ(report.melodies_loaded, 1u);
}

TEST(SalvageTest, SvdFallsBackWhenOnlyOneMelodySurvives) {
  Result<QbhSystem> r = ParseQbhDatabaseSalvage(
      "humdex-db v1\noption scheme svd\n"
      "melody a\n60 1\n62 1\nend\n"
      "melody b\n60 oops\nend\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 1u);
  EXPECT_NE(r.value().options().scheme, SchemeKind::kSvd);
}

TEST(SalvageTest, FailsOnlyWhenNothingIsRecoverable) {
  EXPECT_FALSE(ParseQbhDatabaseSalvage("").ok());
  EXPECT_FALSE(ParseQbhDatabaseSalvage("not a database\n").ok());
  EXPECT_FALSE(ParseQbhDatabaseSalvage("humdex-db v2\n").ok());
  SalvageReport report;
  EXPECT_FALSE(ParseQbhDatabaseSalvage(
                   "humdex-db v1\nmelody a\n60 oops\nend\n", &report)
                   .ok());
  EXPECT_EQ(report.melodies_loaded, 0u);
  EXPECT_EQ(report.melodies_dropped, 1u);
}

TEST(SalvageTest, CountsSalvagedRecordsInMetrics) {
  obs::Counter& c =
      obs::MetricsRegistry::Default().GetCounter("storage.salvaged_records");
  std::uint64_t before = c.value();
  ParseQbhDatabaseSalvage(
      "humdex-db v1\nmelody a\n60 1\nend\nmelody b\n60 oops\nend\n");
  EXPECT_EQ(c.value(), before + 1);
}

TEST(SalvageTest, LoadedSalvageAnswersQueries) {
  QbhSystem original = MakeSystem(12, 5);
  std::string text = SerializeQbhDatabase(original);
  std::size_t last = text.rfind("melody ");
  text.replace(text.find('\n', last) + 1, 2, "xx");  // damage the last melody

  SalvageReport report;
  Result<QbhSystem> r = ParseQbhDatabaseSalvage(text, &report);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(report.melodies_dropped, 1u);

  Hummer hummer(HummerProfile::Good(), 5);
  Series hum = hummer.Hum(*original.melody(2));
  auto matches = r.value().Query(hum, 3);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].id, 2);
}

}  // namespace
}  // namespace humdex
