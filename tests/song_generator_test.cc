#include <gtest/gtest.h>

#include <set>

#include "music/segmenter.h"
#include "music/song_generator.h"

namespace humdex {
namespace {

TEST(SongGeneratorTest, PhraseNoteCountWithinBounds) {
  SongGenerator gen(1);
  for (int i = 0; i < 100; ++i) {
    Melody m = gen.GeneratePhrase();
    EXPECT_GE(m.size(), 15u);
    EXPECT_LE(m.size(), 30u);
  }
}

TEST(SongGeneratorTest, DeterministicForSeed) {
  SongGenerator a(42), b(42);
  for (int i = 0; i < 10; ++i) {
    Melody ma = a.GeneratePhrase(), mb = b.GeneratePhrase();
    ASSERT_EQ(ma.size(), mb.size());
    for (std::size_t j = 0; j < ma.size(); ++j) {
      EXPECT_DOUBLE_EQ(ma.notes[j].pitch, mb.notes[j].pitch);
      EXPECT_DOUBLE_EQ(ma.notes[j].duration, mb.notes[j].duration);
    }
  }
}

TEST(SongGeneratorTest, PitchesInSingableRange) {
  SongGenerator gen(7);
  for (int i = 0; i < 50; ++i) {
    Melody m = gen.GeneratePhrase();
    for (const Note& n : m.notes) {
      EXPECT_GE(n.pitch, 55.0 - 12.0);
      EXPECT_LE(n.pitch, 70.0 + 24.0);
      EXPECT_GT(n.duration, 0.0);
    }
  }
}

TEST(SongGeneratorTest, PhrasesAreDistinct) {
  SongGenerator gen(11);
  auto phrases = gen.GeneratePhrases(50);
  std::set<std::size_t> sizes;
  std::set<double> first_pitches;
  for (const Melody& m : phrases) {
    sizes.insert(m.size());
    first_pitches.insert(m.notes[0].pitch);
  }
  EXPECT_GT(sizes.size(), 3u);
  EXPECT_GT(first_pitches.size(), 5u);
}

TEST(SongGeneratorTest, MotionIsMostlyStepwise) {
  // Tonal melodies move by small intervals most of the time.
  SongGenerator gen(13);
  int small = 0, total = 0;
  for (int i = 0; i < 50; ++i) {
    Melody m = gen.GeneratePhrase();
    for (std::size_t j = 1; j < m.size(); ++j) {
      double iv = std::abs(m.notes[j].pitch - m.notes[j - 1].pitch);
      if (iv <= 4.0) ++small;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(small) / total, 0.6);
}

TEST(SongGeneratorTest, SongSegmentsIntoPaperScalePhrases) {
  // 50 songs -> ~1000 phrases of 15-30 notes, the paper's corpus shape.
  SongGenerator gen(17);
  std::size_t phrase_count = 0;
  for (int s = 0; s < 50; ++s) {
    Melody song = gen.GenerateSong(s);
    auto phrases = SegmentMelody(song);
    for (const Melody& p : phrases) {
      EXPECT_GE(p.size(), 15u);
      // max_notes + merged tail can slightly exceed 30.
      EXPECT_LE(p.size(), 45u);
    }
    phrase_count += phrases.size();
  }
  EXPECT_GT(phrase_count, 500u);
  EXPECT_LT(phrase_count, 2000u);
}

TEST(SongGeneratorTest, NamedPhrases) {
  SongGenerator gen(19);
  auto phrases = gen.GeneratePhrases(3);
  EXPECT_EQ(phrases[0].name, "phrase_0");
  EXPECT_EQ(phrases[2].name, "phrase_2");
  Melody song = gen.GenerateSong(4);
  EXPECT_EQ(song.name, "song_4");
}

}  // namespace
}  // namespace humdex
