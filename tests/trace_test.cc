#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "gemini/query_engine.h"
#include "music/song_generator.h"
#include "obs/trace.h"
#include "qbh/qbh_system.h"
#include "ts/normal_form.h"
#include "util/random.h"

namespace humdex {
namespace {

using obs::QueryTrace;
using obs::ScopedSpan;
using obs::ScopedTrace;
using obs::TraceSpan;

Series RandomWalk(Rng* rng, std::size_t n) {
  Series x(n);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v += rng->Gaussian();
    x[i] = v;
  }
  return x;
}

TEST(TraceTest, NoActiveTraceIsANoOp) {
  // Spans with no installed trace must record nothing and cost nothing
  // observable — the runtime analogue of the compiled-out build.
  {
    HUMDEX_SPAN(span, "orphan");
    HUMDEX_SPAN_ATTR(span, "k", 3.0);
  }
  QueryTrace trace;
  EXPECT_TRUE(trace.empty());
}

TEST(TraceTest, SpanNestingAndTimings) {
  QueryTrace trace;
  {
    ScopedTrace activate(&trace);
    HUMDEX_SPAN(root, "root");
    {
      HUMDEX_SPAN(child, "child");
      HUMDEX_SPAN_ATTR(child, "items", 17.0);
      { HUMDEX_SPAN(grandchild, "grandchild"); }
    }
    { HUMDEX_SPAN(sibling, "sibling"); }
  }
#if !HUMDEX_TRACING_ENABLED
  EXPECT_TRUE(trace.empty());
#else
  ASSERT_EQ(trace.spans().size(), 4u);
  const TraceSpan& root = trace.spans()[0];
  const TraceSpan& child = trace.spans()[1];
  const TraceSpan& grandchild = trace.spans()[2];
  const TraceSpan& sibling = trace.spans()[3];
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.parent, -1);
  EXPECT_EQ(root.depth, 0);
  EXPECT_EQ(child.parent, 0);
  EXPECT_EQ(child.depth, 1);
  EXPECT_EQ(grandchild.parent, 1);
  EXPECT_EQ(grandchild.depth, 2);
  EXPECT_EQ(sibling.parent, 0);
  EXPECT_EQ(sibling.depth, 1);
  EXPECT_EQ(child.Attribute("items"), 17.0);
  EXPECT_EQ(child.Attribute("absent", -5.0), -5.0);

  // Start times are monotone in creation order; children are contained in
  // their parent's window.
  EXPECT_LE(root.start_ns, child.start_ns);
  EXPECT_LE(child.start_ns, grandchild.start_ns);
  EXPECT_LE(child.start_ns + child.duration_ns,
            root.start_ns + root.duration_ns);
  EXPECT_LE(grandchild.duration_ns, child.duration_ns);
  EXPECT_LE(child.duration_ns + sibling.duration_ns, root.duration_ns);

  EXPECT_NE(trace.Find("grandchild"), nullptr);
  EXPECT_EQ(trace.Find("nope"), nullptr);
  EXPECT_FALSE(trace.ToString().empty());

  trace.Clear();
  EXPECT_TRUE(trace.empty());
#endif
}

TEST(TraceTest, NestedScopedTraceRestoresPrevious) {
  QueryTrace outer_trace;
  QueryTrace inner_trace;
  {
    ScopedTrace outer(&outer_trace);
    EXPECT_EQ(ScopedTrace::Active(), &outer_trace);
    {
      ScopedTrace inner(&inner_trace);
      EXPECT_EQ(ScopedTrace::Active(), &inner_trace);
      HUMDEX_SPAN(span, "inner.work");
    }
    EXPECT_EQ(ScopedTrace::Active(), &outer_trace);
  }
  EXPECT_EQ(ScopedTrace::Active(), nullptr);
#if HUMDEX_TRACING_ENABLED
  EXPECT_EQ(inner_trace.spans().size(), 1u);
  EXPECT_TRUE(outer_trace.empty());
#endif
}

class TracedQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(4242);
    std::vector<Series> normals;
    for (int i = 0; i < 400; ++i) {
      normals.push_back(NormalForm(RandomWalk(&rng, 128), 128));
    }
    query_ = NormalForm(RandomWalk(&rng, 128), 128);
    QueryEngineOptions opts;
    opts.normal_len = 128;
    engine_ = std::make_unique<DtwQueryEngine>(MakeNewPaaScheme(128, 8), opts);
    engine_->AddAll(std::move(normals));
  }

  std::unique_ptr<DtwQueryEngine> engine_;
  Series query_;
};

// The PR 2 acceptance criterion: a traced RangeQuery yields populated
// index/LB/DTW stage durations whose candidate-count attributes match the
// QueryStats counters exactly, with stage durations summing to <= total.
TEST_F(TracedQueryTest, RangeQueryCascadeTrace) {
  QueryTrace trace;
  QueryStats stats;
  std::vector<Neighbor> results;
  {
    ScopedTrace activate(&trace);
    results = engine_->RangeQuery(query_, 6.0, &stats);
  }

  // The always-on QueryStats timings are populated regardless of tracing.
  EXPECT_GT(stats.total_ns, 0u);
  EXPECT_GT(stats.index_ns, 0u);
  EXPECT_LE(stats.index_ns + stats.lb_ns + stats.dtw_ns, stats.total_ns);

#if HUMDEX_TRACING_ENABLED
  const TraceSpan* root = trace.Find("query.range");
  const TraceSpan* index = trace.Find("query.range.index_probe");
  const TraceSpan* lb = trace.Find("query.range.lb_kim");
  const TraceSpan* tri = trace.Find("query.range.lb_triangle");
  const TraceSpan* improved = trace.Find("query.range.lb_improved");
  const TraceSpan* dtw = trace.Find("query.range.exact_dtw");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(index, nullptr);
  ASSERT_NE(lb, nullptr);
  ASSERT_NE(tri, nullptr);  // references auto-selected at bulk build
  ASSERT_NE(improved, nullptr);
  ASSERT_NE(dtw, nullptr);

  // Stage durations populated and nested under the root span.
  EXPECT_GT(index->duration_ns, 0u);
  EXPECT_EQ(index->parent, 0);
  EXPECT_EQ(lb->parent, 0);
  EXPECT_EQ(tri->parent, 0);
  EXPECT_EQ(dtw->parent, 0);
  // Monotone stage order and containment in the root.
  EXPECT_LE(index->start_ns + index->duration_ns, lb->start_ns);
  EXPECT_LE(lb->start_ns + lb->duration_ns, tri->start_ns);
  EXPECT_LE(tri->start_ns + tri->duration_ns, dtw->start_ns);
  EXPECT_LE(index->duration_ns + lb->duration_ns + tri->duration_ns +
                dtw->duration_ns,
            root->duration_ns);

  // Candidate counts carried on the spans match QueryStats exactly.
  EXPECT_EQ(index->Attribute("candidates"),
            static_cast<double>(stats.index_candidates));
  EXPECT_EQ(index->Attribute("page_accesses"),
            static_cast<double>(stats.page_accesses));
  EXPECT_EQ(tri->Attribute("pruned"),
            static_cast<double>(stats.triangle_pruned));
  EXPECT_EQ(improved->Attribute("survivors"),
            static_cast<double>(stats.lb_survivors));
  EXPECT_EQ(dtw->Attribute("dtw_calls"),
            static_cast<double>(stats.exact_dtw_calls));
  EXPECT_EQ(dtw->Attribute("results"), static_cast<double>(stats.results));
  EXPECT_EQ(dtw->Attribute("results"), static_cast<double>(results.size()));
#else
  EXPECT_TRUE(trace.empty());
#endif
}

TEST_F(TracedQueryTest, KnnQueryNestsRangeQueryTrace) {
  QueryTrace trace;
  QueryStats stats;
  {
    ScopedTrace activate(&trace);
    engine_->KnnQuery(query_, 5, &stats);
  }
  EXPECT_GT(stats.total_ns, 0u);
  EXPECT_LE(stats.index_ns + stats.lb_ns + stats.dtw_ns, stats.total_ns);
#if HUMDEX_TRACING_ENABLED
  const TraceSpan* root = trace.Find("query.knn");
  const TraceSpan* seed = trace.Find("query.knn.seed");
  const TraceSpan* range = trace.Find("query.range");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(seed, nullptr);
  ASSERT_NE(range, nullptr);
  EXPECT_EQ(seed->depth, 1);
  EXPECT_EQ(range->depth, 1);  // the embedded range query nests under knn
  EXPECT_EQ(seed->Attribute("k"), 5.0);
  EXPECT_NE(trace.Find("query.range.exact_dtw"), nullptr);
#endif
}

TEST_F(TracedQueryTest, KnnOptimalTrace) {
  QueryTrace trace;
  QueryStats stats;
  {
    ScopedTrace activate(&trace);
    engine_->KnnQueryOptimal(query_, 5, &stats);
  }
  EXPECT_GT(stats.total_ns, 0u);
  EXPECT_LE(stats.index_ns + stats.lb_ns + stats.dtw_ns, stats.total_ns);
#if HUMDEX_TRACING_ENABLED
  const TraceSpan* root = trace.Find("query.knn_optimal");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->Attribute("candidates"),
            static_cast<double>(stats.index_candidates));
  EXPECT_EQ(root->Attribute("survivors"),
            static_cast<double>(stats.lb_survivors));
  EXPECT_NE(trace.Find("query.knn_optimal.index_probe"), nullptr);
#endif
}

TEST(QbhTraceTest, QueryProducesTopLevelSpan) {
  Rng rng(77);
  SongGenerator gen(9001);
  QbhSystem system;
  for (Melody& m : gen.GeneratePhrases(40)) system.AddMelody(std::move(m));
  system.Build();

  Series hum = MelodyToSeries(*system.melody(3), 8.0);
  QueryTrace trace;
  QueryStats stats;
  std::vector<QbhMatch> matches;
  {
    ScopedTrace activate(&trace);
    matches = system.Query(hum, 3, &stats);
  }
  EXPECT_FALSE(matches.empty());
  EXPECT_GT(stats.total_ns, 0u);
#if HUMDEX_TRACING_ENABLED
  const TraceSpan* root = trace.Find("qbh.query");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->depth, 0);
  EXPECT_NE(trace.Find("qbh.normal_form"), nullptr);
  // The engine cascade nests under the system span.
  const TraceSpan* range = trace.Find("query.range");
  ASSERT_NE(range, nullptr);
  EXPECT_GT(range->depth, 0);
  EXPECT_EQ(root->Attribute("matches"), static_cast<double>(matches.size()));
#endif
}

}  // namespace
}  // namespace humdex
