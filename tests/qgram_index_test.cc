#include <gtest/gtest.h>

#include <algorithm>

#include "music/contour.h"
#include "music/qgram_index.h"
#include "util/random.h"

namespace humdex {
namespace {

std::string RandomContour(Rng* rng, std::size_t len) {
  static const char kAlphabet[] = "UuSdD";
  std::string s;
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng->NextBounded(5)]);
  }
  return s;
}

TEST(QGramIndexTest, AddAssignsDenseIds) {
  QGramInvertedIndex index(2);
  EXPECT_EQ(index.Add("uudd"), 0);
  EXPECT_EQ(index.Add("dduu"), 1);
  EXPECT_EQ(index.size(), 2u);
  EXPECT_EQ(index.q(), 2u);
}

TEST(QGramIndexTest, CandidatesNeverMissWithinRadius) {
  // No false negatives: every string with ed <= max_ed is a candidate.
  Rng rng(3);
  QGramInvertedIndex index(3);
  std::vector<std::string> strings;
  for (int i = 0; i < 300; ++i) {
    strings.push_back(RandomContour(&rng, static_cast<std::size_t>(
                                              rng.UniformInt(5, 25))));
    index.Add(strings.back());
  }
  for (int trial = 0; trial < 30; ++trial) {
    std::string query = RandomContour(&rng, static_cast<std::size_t>(
                                                rng.UniformInt(5, 25)));
    for (std::size_t max_ed : {0u, 2u, 5u}) {
      auto cands = index.Candidates(query, max_ed);
      std::vector<bool> in(strings.size(), false);
      for (std::int64_t id : cands) in[static_cast<std::size_t>(id)] = true;
      for (std::size_t i = 0; i < strings.size(); ++i) {
        if (EditDistance(query, strings[i]) <= max_ed) {
          EXPECT_TRUE(in[i]) << "missed '" << strings[i] << "' for '" << query
                             << "' at e=" << max_ed;
        }
      }
    }
  }
}

TEST(QGramIndexTest, CandidatesActuallyPrune) {
  Rng rng(5);
  QGramInvertedIndex index(3);
  for (int i = 0; i < 500; ++i) {
    index.Add(RandomContour(&rng, 20));
  }
  std::string query = RandomContour(&rng, 20);
  auto tight = index.Candidates(query, 1);
  EXPECT_LT(tight.size(), 250u);  // random 5-letter strings rarely collide
}

TEST(QGramIndexTest, TopKMatchesBruteForce) {
  Rng rng(7);
  QGramInvertedIndex index(3);
  std::vector<std::string> strings;
  for (int i = 0; i < 200; ++i) {
    strings.push_back(RandomContour(&rng, static_cast<std::size_t>(
                                              rng.UniformInt(8, 24))));
    index.Add(strings.back());
  }
  for (int trial = 0; trial < 10; ++trial) {
    std::string query = RandomContour(&rng, 16);
    for (std::size_t k : {1u, 5u, 20u}) {
      std::size_t examined = 0;
      auto got = index.TopK(query, k, &examined);
      ASSERT_EQ(got.size(), k);
      EXPECT_LE(examined, strings.size());

      std::vector<std::size_t> all;
      for (const std::string& s : strings) all.push_back(EditDistance(query, s));
      std::sort(all.begin(), all.end());
      for (std::size_t i = 0; i < k; ++i) {
        EXPECT_EQ(got[i].second, all[i]) << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST(QGramIndexTest, TopKOnNearDuplicateCollection) {
  // A planted near-duplicate must surface first and be found cheaply.
  Rng rng(9);
  QGramInvertedIndex index(3);
  std::string base = RandomContour(&rng, 20);
  std::int64_t planted = index.Add(base);
  for (int i = 0; i < 400; ++i) index.Add(RandomContour(&rng, 20));

  std::string query = base;
  query[5] = query[5] == 'U' ? 'D' : 'U';  // one substitution
  std::size_t examined = 0;
  auto got = index.TopK(query, 1, &examined);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, planted);
  EXPECT_EQ(got[0].second, 1u);
  EXPECT_LT(examined, 200u);  // far fewer than the full collection
}

TEST(QGramIndexTest, ShortStringsAlwaysCandidates) {
  QGramInvertedIndex index(3);
  index.Add("U");   // shorter than q: no grams at all
  index.Add("ud");
  auto cands = index.Candidates("D", 0);
  EXPECT_EQ(cands.size(), 2u);  // bound vacuous for both
}

TEST(QGramIndexTest, KLargerThanCollection) {
  QGramInvertedIndex index(2);
  index.Add("uudd");
  index.Add("dduu");
  auto got = index.TopK("uudd", 10);
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].second, 0u);
}

}  // namespace
}  // namespace humdex
