#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gemini/query_engine.h"
#include "index/linear_scan.h"
#include "index/rstar_tree.h"
#include "ts/dtw.h"
#include "util/random.h"

namespace humdex {
namespace {

Series RandomWalk(Rng* rng, std::size_t n) {
  Series x(n);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v += rng->Gaussian();
    x[i] = v;
  }
  return x;
}

TEST(NearestToRectTest, RStarMatchesLinearScan) {
  Rng rng(3);
  RStarTree tree(4);
  LinearScanIndex scan(4);
  for (std::int64_t id = 0; id < 1500; ++id) {
    Series p(4);
    for (double& v : p) v = rng.Uniform(-10, 10);
    tree.Insert(p, id);
    scan.Insert(p, id);
  }
  for (int q = 0; q < 25; ++q) {
    Series a(4), b(4), lo(4), hi(4);
    for (std::size_t d = 0; d < 4; ++d) {
      a[d] = rng.Uniform(-10, 10);
      b[d] = rng.Uniform(-10, 10);
      lo[d] = std::min(a[d], b[d]);
      hi[d] = std::max(a[d], b[d]);
    }
    Rect rect(lo, hi);
    auto t = tree.NearestToRect(rect, 10);
    auto s = scan.NearestToRect(rect, 10);
    ASSERT_EQ(t.size(), s.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
      EXPECT_NEAR(t[i].distance, s[i].distance, 1e-9);
    }
  }
}

TEST(NearestToRectTest, PointsInsideRectAtDistanceZero) {
  RStarTree tree(2);
  tree.Insert({1.0, 1.0}, 0);
  tree.Insert({5.0, 5.0}, 1);
  auto nn = tree.NearestToRect(Rect({0, 0}, {2, 2}), 2);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].id, 0);
  EXPECT_DOUBLE_EQ(nn[0].distance, 0.0);
  EXPECT_NEAR(nn[1].distance, std::sqrt(18.0), 1e-12);
}

class KnnOptimalTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KnnOptimalTest, AgreesWithTwoStepKnn) {
  const std::size_t k = GetParam();
  Rng rng(42 + k);
  std::vector<Series> corpus;
  for (int i = 0; i < 400; ++i) corpus.push_back(RandomWalk(&rng, 128));
  QueryEngineOptions opts;
  DtwQueryEngine engine(MakeNewPaaScheme(128, 8), opts);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    engine.Add(corpus[i], static_cast<std::int64_t>(i));
  }
  for (int q = 0; q < 10; ++q) {
    Series query = RandomWalk(&rng, 128);
    auto two_step = engine.KnnQuery(query, k);
    auto optimal = engine.KnnQueryOptimal(query, k);
    ASSERT_EQ(two_step.size(), optimal.size());
    for (std::size_t i = 0; i < two_step.size(); ++i) {
      EXPECT_NEAR(two_step[i].distance, optimal[i].distance, 1e-9);
    }
  }
}

TEST_P(KnnOptimalTest, NeverComputesMoreExactDtwThanTwoStep) {
  const std::size_t k = GetParam();
  Rng rng(77 + k);
  std::vector<Series> corpus;
  for (int i = 0; i < 600; ++i) corpus.push_back(RandomWalk(&rng, 128));
  QueryEngineOptions opts;
  DtwQueryEngine engine(MakeNewPaaScheme(128, 8), opts);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    engine.Add(corpus[i], static_cast<std::int64_t>(i));
  }
  std::size_t total_two_step = 0, total_optimal = 0;
  for (int q = 0; q < 15; ++q) {
    Series query = RandomWalk(&rng, 128);
    QueryStats ts, os;
    engine.KnnQuery(query, k, &ts);
    engine.KnnQueryOptimal(query, k, &os);
    total_two_step += ts.exact_dtw_calls;
    total_optimal += os.exact_dtw_calls;
  }
  EXPECT_LE(total_optimal, total_two_step);
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnOptimalTest, ::testing::Values(1, 5, 20));

TEST(KnnOptimalTest, ExactAgainstBruteForce) {
  Rng rng(11);
  std::vector<Series> corpus;
  for (int i = 0; i < 250; ++i) corpus.push_back(RandomWalk(&rng, 128));
  QueryEngineOptions opts;
  DtwQueryEngine engine(MakeNewPaaScheme(128, 8), opts);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    engine.Add(corpus[i], static_cast<std::int64_t>(i));
  }
  const std::size_t band = engine.band_radius();
  for (int q = 0; q < 6; ++q) {
    Series query = RandomWalk(&rng, 128);
    auto got = engine.KnnQueryOptimal(query, 7);
    std::vector<double> all;
    for (const Series& s : corpus) all.push_back(LdtwDistance(query, s, band));
    std::sort(all.begin(), all.end());
    ASSERT_EQ(got.size(), 7u);
    for (std::size_t i = 0; i < 7; ++i) EXPECT_NEAR(got[i].distance, all[i], 1e-9);
  }
}

TEST(KnnOptimalTest, EdgeCases) {
  QueryEngineOptions opts;
  DtwQueryEngine engine(MakeNewPaaScheme(128, 8), opts);
  Series q(128, 0.0);
  EXPECT_TRUE(engine.KnnQueryOptimal(q, 3).empty());
  engine.Add(Series(128, 1.0), 0);
  engine.Add(Series(128, 2.0), 1);
  EXPECT_TRUE(engine.KnnQueryOptimal(q, 0).empty());
  auto nn = engine.KnnQueryOptimal(q, 10);  // k > size
  EXPECT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].id, 0);
}

}  // namespace
}  // namespace humdex
