#include <gtest/gtest.h>

#include <algorithm>

#include "ts/envelope.h"
#include "util/random.h"

namespace humdex {
namespace {

// Reference O(nk) envelope for validating the O(n) deque implementation.
Envelope NaiveEnvelope(const Series& x, std::size_t k) {
  const std::size_t n = x.size();
  Envelope e;
  e.lower.resize(n);
  e.upper.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t lo = i >= k ? i - k : 0;
    std::size_t hi = std::min(n - 1, i + k);
    double mn = x[lo], mx = x[lo];
    for (std::size_t j = lo; j <= hi; ++j) {
      mn = std::min(mn, x[j]);
      mx = std::max(mx, x[j]);
    }
    e.lower[i] = mn;
    e.upper[i] = mx;
  }
  return e;
}

TEST(EnvelopeTest, ZeroRadiusEqualsSeries) {
  Series x{1, 5, 2, 4};
  Envelope e = BuildEnvelope(x, 0);
  EXPECT_EQ(e.lower, x);
  EXPECT_EQ(e.upper, x);
}

TEST(EnvelopeTest, KnownSmallCase) {
  Series x{1, 5, 2, 4};
  Envelope e = BuildEnvelope(x, 1);
  Series expect_upper{5, 5, 5, 4};
  Series expect_lower{1, 1, 2, 2};
  EXPECT_EQ(e.upper, expect_upper);
  EXPECT_EQ(e.lower, expect_lower);
}

TEST(EnvelopeTest, MatchesNaiveOnRandomInputs) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 200));
    std::size_t k = static_cast<std::size_t>(rng.UniformInt(0, 30));
    Series x(n);
    for (double& v : x) v = rng.Gaussian();
    Envelope fast = BuildEnvelope(x, k);
    Envelope naive = NaiveEnvelope(x, k);
    EXPECT_EQ(fast.lower, naive.lower) << "n=" << n << " k=" << k;
    EXPECT_EQ(fast.upper, naive.upper) << "n=" << n << " k=" << k;
  }
}

TEST(EnvelopeTest, ContainsItsOwnSeries) {
  Rng rng(13);
  Series x(100);
  for (double& v : x) v = rng.Gaussian();
  for (std::size_t k : {0u, 1u, 5u, 50u, 500u}) {
    EXPECT_TRUE(BuildEnvelope(x, k).Contains(x));
  }
}

TEST(EnvelopeTest, LargerRadiusIsWider) {
  Rng rng(17);
  Series x(64);
  for (double& v : x) v = rng.Gaussian();
  Envelope small = BuildEnvelope(x, 2);
  Envelope big = BuildEnvelope(x, 8);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(big.lower[i], small.lower[i]);
    EXPECT_GE(big.upper[i], small.upper[i]);
  }
}

TEST(EnvelopeTest, HugeRadiusIsGlobalMinMax) {
  Series x{3, -1, 4, 1, 5};
  Envelope e = BuildEnvelope(x, 100);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(e.lower[i], -1.0);
    EXPECT_DOUBLE_EQ(e.upper[i], 5.0);
  }
}

TEST(EnvelopeTest, ContainsRejectsOutliers) {
  Series x{0, 0, 0, 0};
  Envelope e = BuildEnvelope(x, 1);
  Series inside{0, 0, 0, 0};
  Series outside{0, 0, 1, 0};
  EXPECT_TRUE(e.Contains(inside));
  EXPECT_FALSE(e.Contains(outside));
  EXPECT_FALSE(e.Contains({0, 0, 0}));  // length mismatch
}

TEST(EnvelopeDistanceTest, ZeroInsideEnvelope) {
  Series y{1, 2, 3, 4, 5};
  Envelope e = BuildEnvelope(y, 2);
  EXPECT_DOUBLE_EQ(DistanceToEnvelope(y, e), 0.0);
}

TEST(EnvelopeDistanceTest, ClampDistanceKnownValue) {
  Series y{0, 0, 0};
  Envelope e = BuildEnvelope(y, 0);  // envelope == y
  Series x{3, 0, -4};
  EXPECT_DOUBLE_EQ(SquaredDistanceToEnvelope(x, e), 25.0);
  EXPECT_DOUBLE_EQ(DistanceToEnvelope(x, e), 5.0);
}

TEST(EnvelopeDistanceTest, IsMinOverContainedSeries) {
  // D(x, e) <= D(x, z) for a sample of z inside e.
  Rng rng(19);
  Series y(32);
  for (double& v : y) v = rng.Gaussian();
  Envelope e = BuildEnvelope(y, 3);
  Series x(32);
  for (double& v : x) v = rng.Gaussian(0.0, 2.0);
  double de = DistanceToEnvelope(x, e);
  for (int trial = 0; trial < 200; ++trial) {
    Series z(32);
    for (std::size_t i = 0; i < 32; ++i) {
      z[i] = rng.Uniform(e.lower[i], e.upper[i] + 1e-15);
    }
    EXPECT_LE(de, EuclideanDistance(x, z) + 1e-9);
  }
}

}  // namespace
}  // namespace humdex
