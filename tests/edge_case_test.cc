// Pathological inputs across the stack: constant/impulse/alternating series
// through every transform, extreme values through DTW, id reuse in the
// engine, and degenerate corpora.
#include <gtest/gtest.h>

#include <cmath>

#include "gemini/query_engine.h"
#include "transform/dft.h"
#include "transform/dwt.h"
#include "transform/paa.h"
#include "transform/poly.h"
#include "ts/dtw.h"
#include "ts/envelope.h"
#include "ts/lower_bound.h"
#include "util/random.h"

namespace humdex {
namespace {

TEST(EdgeCaseTest, ConstantSeriesThroughEveryTransform) {
  Series x(64, 3.0);
  // PAA: every feature equals sqrt(8)*3.
  PaaTransform paa(64, 8);
  for (double f : paa.Apply(x)) EXPECT_NEAR(f, std::sqrt(8.0) * 3.0, 1e-12);
  // DFT: only the DC feature is nonzero.
  DftTransform dft(64, 8);
  Series fd = dft.Apply(x);
  EXPECT_NEAR(fd[0], 3.0 * 64.0 / 8.0, 1e-9);  // 3*n/sqrt(n) = 3*sqrt(n)
  for (std::size_t i = 1; i < fd.size(); ++i) EXPECT_NEAR(fd[i], 0.0, 1e-9);
  // DWT: only the approximation coefficient is nonzero.
  DwtTransform dwt(64, 8);
  Series fw = dwt.Apply(x);
  EXPECT_NEAR(fw[0], 3.0 * 8.0, 1e-9);  // 3*sqrt(64)
  for (std::size_t i = 1; i < fw.size(); ++i) EXPECT_NEAR(fw[i], 0.0, 1e-9);
  // Poly: only degree 0.
  PolyTransform poly(64, 4);
  Series fp = poly.Apply(x);
  EXPECT_NEAR(fp[0], 3.0 * 8.0, 1e-9);
  for (std::size_t i = 1; i < fp.size(); ++i) EXPECT_NEAR(fp[i], 0.0, 1e-9);
}

TEST(EdgeCaseTest, DtwOnConstantAndImpulseSeries) {
  Series flat(32, 1.0);
  Series impulse(32, 1.0);
  impulse[16] = 100.0;
  // DTW cannot warp away a value difference: the impulse must cost at least
  // its minimum single-alignment penalty.
  EXPECT_GE(DtwDistance(flat, impulse), 99.0 - 1e-9);
  EXPECT_DOUBLE_EQ(DtwDistance(flat, flat), 0.0);
}

TEST(EdgeCaseTest, DtwWithExtremeMagnitudes) {
  Series a{1e150, 1e150};
  Series b{-1e150, -1e150};
  double d = DtwDistance(a, b);
  EXPECT_TRUE(std::isfinite(d) || std::isinf(d));  // no NaN
  Series c{1e-300, 2e-300};
  EXPECT_GE(DtwDistance(c, c), 0.0);
}

TEST(EdgeCaseTest, SingleElementSeries) {
  Series x{5.0}, y{7.0};
  EXPECT_DOUBLE_EQ(DtwDistance(x, y), 2.0);
  EXPECT_DOUBLE_EQ(LdtwDistance(x, y, 0), 2.0);
  EXPECT_DOUBLE_EQ(UtwDistance(x, y), 2.0);
  Envelope e = BuildEnvelope(x, 3);
  EXPECT_DOUBLE_EQ(e.lower[0], 5.0);
  EXPECT_DOUBLE_EQ(e.upper[0], 5.0);
  EXPECT_DOUBLE_EQ(LbKeogh(y, e), 2.0);
}

TEST(EdgeCaseTest, AlternatingSeriesEnvelopeAndBounds) {
  Series x(64);
  for (std::size_t i = 0; i < 64; ++i) x[i] = (i % 2 == 0) ? 1.0 : -1.0;
  // Any k >= 1 envelope spans [-1, 1] everywhere.
  Envelope e = BuildEnvelope(x, 1);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(e.lower[i], -1.0);
    EXPECT_DOUBLE_EQ(e.upper[i], 1.0);
  }
  // A flat series inside that envelope has LB 0 but positive DTW.
  Series flat(64, 0.0);
  EXPECT_DOUBLE_EQ(LbKeogh(flat, e), 0.0);
  EXPECT_GT(LdtwDistance(flat, x, 1), 0.0);
}

TEST(EdgeCaseTest, EngineIdReuseAfterRemove) {
  QueryEngineOptions opts;
  DtwQueryEngine engine(MakeNewPaaScheme(128, 8), opts);
  Series a(128, 1.0), b(128, 2.0);
  engine.Add(a, 7);
  EXPECT_TRUE(engine.Remove(7));
  engine.Add(b, 7);  // id slot is free again
  EXPECT_EQ(engine.size(), 1u);
  auto nn = engine.KnnQuery(b, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 7);
  EXPECT_DOUBLE_EQ(nn[0].distance, 0.0);
  // The engine must serve the new series, not the old one.
  EXPECT_DOUBLE_EQ(engine.ExactDistance(b, 7), 0.0);
  EXPECT_GT(engine.ExactDistance(a, 7), 0.0);
}

TEST(EdgeCaseTest, DegenerateCorpusOfIdenticalSeriesInEngine) {
  QueryEngineOptions opts;
  DtwQueryEngine engine(MakeNewPaaScheme(128, 8), opts);
  Series same(128, 5.0);
  for (std::int64_t id = 0; id < 50; ++id) engine.Add(same, id);
  auto range = engine.RangeQuery(same, 0.0);
  EXPECT_EQ(range.size(), 50u);
  auto nn = engine.KnnQuery(same, 10);
  EXPECT_EQ(nn.size(), 10u);
  for (const Neighbor& n : nn) EXPECT_DOUBLE_EQ(n.distance, 0.0);
}

TEST(EdgeCaseTest, EnvelopeOfMonotoneSeries) {
  Series x{1, 2, 3, 4, 5, 6, 7, 8};
  Envelope e = BuildEnvelope(x, 2);
  // Upper = shifted-forward max, lower = shifted-back min, clamped.
  Series expect_upper{3, 4, 5, 6, 7, 8, 8, 8};
  Series expect_lower{1, 1, 1, 2, 3, 4, 5, 6};
  EXPECT_EQ(e.upper, expect_upper);
  EXPECT_EQ(e.lower, expect_lower);
}

TEST(EdgeCaseTest, LbKimDegenerateSeries) {
  Series x{5.0};
  Series y{5.0};
  EXPECT_DOUBLE_EQ(LbKim(x, y), 0.0);
  EXPECT_DOUBLE_EQ(LbYi(x, y), 0.0);
}

TEST(EdgeCaseTest, PaaOfNegativeSeriesKeepsSigns) {
  PaaTransform paa(8, 2);
  Series x{-1, -2, -3, -4, 4, 3, 2, 1};
  Series f = paa.Apply(x);
  EXPECT_NEAR(f[0], std::sqrt(4.0) * -2.5, 1e-12);
  EXPECT_NEAR(f[1], std::sqrt(4.0) * 2.5, 1e-12);
}

TEST(EdgeCaseTest, RangeQueryWithZeroRadius) {
  Rng rng(3);
  QueryEngineOptions opts;
  DtwQueryEngine engine(MakeNewPaaScheme(128, 8), opts);
  Series stored(128);
  for (double& v : stored) v = rng.Gaussian();
  engine.Add(stored, 0);
  // Exact-match query at radius 0 returns the stored series.
  auto hits = engine.RangeQuery(stored, 0.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_DOUBLE_EQ(hits[0].distance, 0.0);
}

}  // namespace
}  // namespace humdex
