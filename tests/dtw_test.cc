#include <gtest/gtest.h>

#include <cmath>

#include "ts/dtw.h"
#include "ts/normal_form.h"
#include "util/random.h"

namespace humdex {
namespace {

// Direct implementation of the paper's recursive Definition 1 (exponential;
// tiny inputs only) used to validate the DP.
double RecursiveDtwSq(const Series& x, const Series& y, std::size_t i,
                      std::size_t j) {
  double cost = (x[i] - y[j]) * (x[i] - y[j]);
  if (i == 0 && j == 0) return cost;
  double best = kInfiniteDistance;
  if (j > 0) best = std::min(best, RecursiveDtwSq(x, y, i, j - 1));
  if (i > 0) best = std::min(best, RecursiveDtwSq(x, y, i - 1, j));
  if (i > 0 && j > 0) best = std::min(best, RecursiveDtwSq(x, y, i - 1, j - 1));
  return cost + best;
}

TEST(DtwTest, IdenticalSeriesZeroDistance) {
  Series x{1, 2, 3, 2, 1};
  EXPECT_DOUBLE_EQ(DtwDistance(x, x), 0.0);
  EXPECT_DOUBLE_EQ(LdtwDistance(x, x, 0), 0.0);
}

TEST(DtwTest, MatchesRecursiveDefinition) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 7));
    std::size_t m = static_cast<std::size_t>(rng.UniformInt(1, 7));
    Series x(n), y(m);
    for (double& v : x) v = rng.Gaussian();
    for (double& v : y) v = rng.Gaussian();
    double expect = std::sqrt(RecursiveDtwSq(x, y, n - 1, m - 1));
    EXPECT_NEAR(DtwDistance(x, y), expect, 1e-9);
  }
}

TEST(DtwTest, Symmetric) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Series x(20), y(25);
    for (double& v : x) v = rng.Gaussian();
    for (double& v : y) v = rng.Gaussian();
    EXPECT_NEAR(DtwDistance(x, y), DtwDistance(y, x), 1e-9);
  }
}

TEST(DtwTest, AbsorbsLocalTimeWarp) {
  // Stretching one plateau of a step series should cost nothing under DTW
  // while costing a lot point-to-point.
  Series x{0, 0, 0, 5, 5, 5, 0, 0, 0};
  Series y{0, 0, 0, 5, 5, 5, 5, 5, 0};
  EXPECT_GT(EuclideanDistance(x, y), 5.0);
  EXPECT_DOUBLE_EQ(DtwDistance(x, y), 0.0);
}

TEST(DtwTest, AtMostEuclideanForEqualLengths) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Series x(30), y(30);
    for (double& v : x) v = rng.Gaussian();
    for (double& v : y) v = rng.Gaussian();
    EXPECT_LE(DtwDistance(x, y), EuclideanDistance(x, y) + 1e-9);
  }
}

TEST(LdtwTest, ZeroBandIsEuclidean) {
  Rng rng(9);
  Series x(16), y(16);
  for (double& v : x) v = rng.Gaussian();
  for (double& v : y) v = rng.Gaussian();
  EXPECT_NEAR(LdtwDistance(x, y, 0), EuclideanDistance(x, y), 1e-9);
}

TEST(LdtwTest, MonotoneInBandWidth) {
  Rng rng(11);
  Series x(40), y(40);
  for (double& v : x) v = rng.Gaussian();
  for (double& v : y) v = rng.Gaussian();
  double prev = LdtwDistance(x, y, 0);
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u, 40u}) {
    double d = LdtwDistance(x, y, k);
    EXPECT_LE(d, prev + 1e-9);
    prev = d;
  }
}

TEST(LdtwTest, HugeBandEqualsFullDtw) {
  Rng rng(13);
  Series x(24), y(31);
  for (double& v : x) v = rng.Gaussian();
  for (double& v : y) v = rng.Gaussian();
  EXPECT_NEAR(LdtwDistance(x, y, 64), DtwDistance(x, y), 1e-9);
}

TEST(LdtwTest, InfiniteWhenBandTooNarrowForLengths) {
  Series x(10, 1.0), y(20, 1.0);
  EXPECT_TRUE(std::isinf(LdtwDistance(x, y, 5)));
  EXPECT_FALSE(std::isinf(LdtwDistance(x, y, 10)));
}

TEST(LdtwTest, LowerBoundsFullDtwAlways) {
  // Banded DTW >= unconstrained DTW (fewer paths).
  Rng rng(15);
  for (int trial = 0; trial < 30; ++trial) {
    Series x(20), y(20);
    for (double& v : x) v = rng.Gaussian();
    for (double& v : y) v = rng.Gaussian();
    std::size_t k = static_cast<std::size_t>(rng.UniformInt(0, 20));
    EXPECT_GE(LdtwDistance(x, y, k), DtwDistance(x, y) - 1e-9);
  }
}

TEST(EarlyAbandonTest, AgreesWithExactUnderThreshold) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    Series x(32), y(32);
    for (double& v : x) v = rng.Gaussian();
    for (double& v : y) v = rng.Gaussian();
    double exact = LdtwDistance(x, y, 4);
    double thr = rng.Uniform(0.0, 2.0 * exact + 0.1);
    double got = LdtwDistanceEarlyAbandon(x, y, 4, thr);
    if (exact <= thr) {
      EXPECT_NEAR(got, exact, 1e-9);
    } else {
      // Abandoned or exact; either way it must exceed the threshold.
      EXPECT_GT(got, thr);
    }
  }
}

TEST(EarlyAbandonTest, ThresholdExactlyAtDistanceIsNotAbandoned) {
  // Regression: range-based kNN issues queries whose radius EQUALS the exact
  // distance of a stored item; (sqrt(d2))^2 can round below d2 and must not
  // trigger a spurious abandon.
  Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    Series x(32), y(32);
    for (double& v : x) v = rng.Gaussian();
    for (double& v : y) v = rng.Gaussian();
    double exact = LdtwDistance(x, y, 4);
    double got = LdtwDistanceEarlyAbandon(x, y, 4, exact);
    EXPECT_FALSE(std::isinf(got));
    EXPECT_NEAR(got, exact, 1e-12);
  }
}

TEST(UtwTest, EqualSeriesZero) {
  Series x{1, 2, 3};
  EXPECT_DOUBLE_EQ(UtwDistance(x, x), 0.0);
}

TEST(UtwTest, MatchesLemma1Definition) {
  // D^2_UTW = D^2(U_m(x), U_n(y)) / (mn), materialized explicitly.
  Rng rng(19);
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 12));
    std::size_t m = static_cast<std::size_t>(rng.UniformInt(1, 12));
    Series x(n), y(m);
    for (double& v : x) v = rng.Gaussian();
    for (double& v : y) v = rng.Gaussian();
    Series ux = Upsample(x, m), uy = Upsample(y, n);
    double expect =
        std::sqrt(SquaredEuclideanDistance(ux, uy) / static_cast<double>(n * m));
    EXPECT_NEAR(UtwDistance(x, y), expect, 1e-9);
  }
}

TEST(UtwTest, TimeScalingInvariance) {
  // UTW(x, Upsample(x, w)) == 0: same melody at w-times-slower tempo.
  Series x{2, 4, 6, 4};
  for (std::size_t w : {2u, 3u, 5u}) {
    EXPECT_NEAR(UtwDistance(x, Upsample(x, w)), 0.0, 1e-12);
  }
}

TEST(BandRadiusTest, WidthRoundTrip) {
  // delta = (2k+1)/n.
  EXPECT_EQ(BandRadiusForWidth(0.1, 128), 6u);   // (12.8-1)/2 = 5.9 -> 6
  EXPECT_EQ(BandRadiusForWidth(0.0, 128), 0u);
  EXPECT_EQ(BandRadiusForWidth(1.0, 9), 4u);
  EXPECT_DOUBLE_EQ(WidthForBandRadius(4, 9), 1.0);
  EXPECT_NEAR(WidthForBandRadius(BandRadiusForWidth(0.2, 200), 200), 0.2, 0.01);
}

TEST(NormalFormDistanceTest, CombinedDefinitionMatchesManualPipeline) {
  Rng rng(23);
  Series x(20), y(35);
  for (double& v : x) v = rng.Gaussian();
  for (double& v : y) v = rng.Gaussian();
  Series xs = UtwNormalForm(x, 100), ys = UtwNormalForm(y, 100);
  EXPECT_NEAR(DtwNormalFormDistance(x, y, 100, 5), LdtwDistance(xs, ys, 5), 1e-12);
}

TEST(WarpingPathTest, PathIsValidAndMatchesDistance) {
  Rng rng(29);
  for (int trial = 0; trial < 20; ++trial) {
    Series x(12), y(15);
    for (double& v : x) v = rng.Gaussian();
    for (double& v : y) v = rng.Gaussian();
    WarpingPath path;
    double d = DtwDistanceWithPath(x, y, &path);
    EXPECT_NEAR(d, DtwDistance(x, y), 1e-9);
    // Endpoints.
    EXPECT_EQ(path.front(), (std::pair<std::size_t, std::size_t>(0, 0)));
    EXPECT_EQ(path.back(), (std::pair<std::size_t, std::size_t>(11, 14)));
    // Monotone + continuous steps; path cost equals the distance.
    double cost = 0.0;
    for (std::size_t t = 0; t < path.size(); ++t) {
      if (t > 0) {
        std::size_t di = path[t].first - path[t - 1].first;
        std::size_t dj = path[t].second - path[t - 1].second;
        EXPECT_LE(di, 1u);
        EXPECT_LE(dj, 1u);
        EXPECT_GE(di + dj, 1u);
      }
      double g = x[path[t].first] - y[path[t].second];
      cost += g * g;
    }
    EXPECT_NEAR(std::sqrt(cost), d, 1e-9);
  }
}

}  // namespace
}  // namespace humdex
