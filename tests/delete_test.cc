// Deletion across the index substrate and the query engine: removed entries
// vanish from every query, survivors are untouched, invariants hold, and a
// randomized insert/delete interleaving matches a reference implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "gemini/query_engine.h"
#include "index/grid_file.h"
#include "index/linear_scan.h"
#include "index/rstar_tree.h"
#include "music/hummer.h"
#include "music/song_generator.h"
#include "qbh/qbh_system.h"
#include "util/random.h"

namespace humdex {
namespace {

Series RandomPoint(Rng* rng, std::size_t dims) {
  Series p(dims);
  for (double& v : p) v = rng->Uniform(-10, 10);
  return p;
}

TEST(DeleteTest, DeleteFromSmallLeafTree) {
  RStarTree tree(2);
  tree.Insert({1, 1}, 0);
  tree.Insert({2, 2}, 1);
  EXPECT_TRUE(tree.Delete({1, 1}, 0));
  EXPECT_EQ(tree.size(), 1u);
  tree.CheckInvariants();
  auto r = tree.RangeQuery(Rect({-5, -5}, {5, 5}), 0.0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], 1);
}

TEST(DeleteTest, DeleteMissingReturnsFalse) {
  RStarTree tree(2);
  tree.Insert({1, 1}, 0);
  EXPECT_FALSE(tree.Delete({1, 1}, 99));    // wrong id
  EXPECT_FALSE(tree.Delete({2, 2}, 0));     // wrong point
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.Delete({1, 1}, 0));
  EXPECT_FALSE(tree.Delete({1, 1}, 0));     // already gone
  EXPECT_EQ(tree.size(), 0u);
}

TEST(DeleteTest, DeleteHalfThenQueriesMatchScan) {
  Rng rng(3);
  RStarTree tree(4);
  LinearScanIndex scan(4);
  std::vector<Series> pts;
  for (std::int64_t id = 0; id < 4000; ++id) {
    Series p = RandomPoint(&rng, 4);
    pts.push_back(p);
    tree.Insert(p, id);
    scan.Insert(p, id);
  }
  for (std::int64_t id = 0; id < 4000; id += 2) {
    EXPECT_TRUE(tree.Delete(pts[static_cast<std::size_t>(id)], id));
    EXPECT_TRUE(scan.Delete(pts[static_cast<std::size_t>(id)], id));
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 2000u);
  for (int q = 0; q < 25; ++q) {
    Series center = RandomPoint(&rng, 4);
    auto t = tree.RangeQuery(Rect::FromPoint(center), 4.0);
    auto s = scan.RangeQuery(Rect::FromPoint(center), 4.0);
    std::sort(t.begin(), t.end());
    std::sort(s.begin(), s.end());
    EXPECT_EQ(t, s);
  }
}

TEST(DeleteTest, DeleteEverythingLeavesEmptyTree) {
  Rng rng(5);
  RStarTree tree(3);
  std::vector<Series> pts;
  for (std::int64_t id = 0; id < 1000; ++id) {
    pts.push_back(RandomPoint(&rng, 3));
    tree.Insert(pts.back(), id);
  }
  // Delete in a scrambled order.
  std::vector<std::int64_t> order(1000);
  for (std::size_t i = 0; i < 1000; ++i) order[i] = static_cast<std::int64_t>(i);
  rng.Shuffle(&order);
  for (std::int64_t id : order) {
    EXPECT_TRUE(tree.Delete(pts[static_cast<std::size_t>(id)], id));
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Height(), 1u);  // root collapsed back to a leaf
  EXPECT_TRUE(tree.RangeQuery(Rect(Series(3, -100), Series(3, 100)), 0.0).empty());
}

TEST(DeleteTest, RandomizedInterleavingMatchesReference) {
  Rng rng(7);
  RStarTree tree(3);
  GridFile grid(3);
  std::map<std::int64_t, Series> reference;
  std::int64_t next_id = 0;
  for (int op = 0; op < 8000; ++op) {
    if (reference.empty() || rng.Bernoulli(0.6)) {
      Series p = RandomPoint(&rng, 3);
      tree.Insert(p, next_id);
      grid.Insert(p, next_id);
      reference[next_id] = p;
      ++next_id;
    } else {
      auto it = reference.begin();
      std::advance(it, rng.UniformInt(0, static_cast<int>(reference.size()) - 1));
      EXPECT_TRUE(tree.Delete(it->second, it->first));
      EXPECT_TRUE(grid.Delete(it->second, it->first));
      reference.erase(it);
    }
    if (op % 1000 == 999) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), reference.size());
  EXPECT_EQ(grid.size(), reference.size());
  auto all = tree.RangeQuery(Rect(Series(3, -100), Series(3, 100)), 0.0);
  EXPECT_EQ(all.size(), reference.size());
  for (std::int64_t id : all) EXPECT_TRUE(reference.count(id));
}

TEST(DeleteTest, DeleteFromBulkLoadedTree) {
  Rng rng(9);
  std::vector<Series> pts;
  std::vector<std::int64_t> ids;
  for (std::int64_t id = 0; id < 3000; ++id) {
    pts.push_back(RandomPoint(&rng, 4));
    ids.push_back(id);
  }
  auto tree = RStarTree::BulkLoad(4, pts, ids);
  for (std::int64_t id = 0; id < 3000; id += 3) {
    EXPECT_TRUE(tree->Delete(pts[static_cast<std::size_t>(id)], id));
  }
  tree->CheckInvariants();
  EXPECT_EQ(tree->size(), 2000u);
}

TEST(EngineRemoveTest, RemovedSeriesVanishesFromAllQueries) {
  Rng rng(11);
  std::vector<Series> corpus;
  for (int i = 0; i < 200; ++i) {
    Series x(128);
    double v = 0.0;
    for (double& e : x) {
      v += rng.Gaussian();
      e = v;
    }
    corpus.push_back(x);
  }
  QueryEngineOptions opts;
  DtwQueryEngine engine(MakeNewPaaScheme(128, 8), opts);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    engine.Add(corpus[i], static_cast<std::int64_t>(i));
  }
  // Query a stored series: itself first at distance 0.
  auto before = engine.KnnQuery(corpus[50], 1);
  ASSERT_EQ(before[0].id, 50);

  EXPECT_TRUE(engine.Remove(50));
  EXPECT_FALSE(engine.Remove(50));
  EXPECT_EQ(engine.size(), 199u);

  auto after = engine.KnnQuery(corpus[50], 3);
  for (const Neighbor& n : after) EXPECT_NE(n.id, 50);
  auto range = engine.RangeQuery(corpus[50], 100.0);
  for (const Neighbor& n : range) EXPECT_NE(n.id, 50);
  auto optimal = engine.KnnQueryOptimal(corpus[50], 3);
  for (const Neighbor& n : optimal) EXPECT_NE(n.id, 50);

  // Survivors still answer correctly.
  auto other = engine.KnnQuery(corpus[51], 1);
  ASSERT_EQ(other.size(), 1u);
  EXPECT_EQ(other[0].id, 51);
  EXPECT_DOUBLE_EQ(other[0].distance, 0.0);
}

TEST(EngineRemoveTest, RemoveUnknownIdsReturnsFalse) {
  QueryEngineOptions opts;
  DtwQueryEngine engine(MakeNewPaaScheme(128, 8), opts);
  EXPECT_FALSE(engine.Remove(0));
  EXPECT_FALSE(engine.Remove(-1));
  engine.Add(Series(128, 1.0), 5);
  EXPECT_FALSE(engine.Remove(4));
  EXPECT_TRUE(engine.Remove(5));
}

// QbhSystem::Remove exercised end to end — through the engine down to each
// index backend — on every IndexKind.
class SystemRemoveTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(SystemRemoveTest, RemoveReachesTheIndexBackend) {
  SongGenerator gen(17);
  auto corpus = gen.GeneratePhrases(60);
  QbhOptions opt;
  opt.index = GetParam();
  QbhSystem system(opt);
  for (const Melody& m : corpus) system.AddMelody(m);
  system.Build();

  Hummer hummer(HummerProfile::Perfect(), 23);
  // Remove a third of the corpus, scattered.
  for (std::int64_t id = 0; id < 60; id += 3) {
    ASSERT_TRUE(system.Remove(id).ok());
  }
  EXPECT_EQ(system.size(), 40u);
  EXPECT_EQ(system.next_id(), 60);

  for (std::int64_t id = 0; id < 60; ++id) {
    Series hum = hummer.Hum(corpus[static_cast<std::size_t>(id)]);
    auto matches = system.Query(hum, 5);
    if (id % 3 == 0) {
      EXPECT_FALSE(system.melody(id).has_value());
      for (const QbhMatch& m : matches) EXPECT_NE(m.id, id);
      EXPECT_EQ(system.RankOf(hum, id), 0u);
    } else {
      ASSERT_FALSE(matches.empty());
      EXPECT_EQ(matches[0].id, id);  // survivors still rank first
    }
  }

  // Inserts after removal keep working against the same backend.
  Melody extra = SongGenerator(29).GeneratePhrases(1)[0];
  auto id = system.Insert(extra);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 60);
  auto matches = system.Query(hummer.Hum(extra), 1);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].id, 60);
}

INSTANTIATE_TEST_SUITE_P(AllIndexKinds, SystemRemoveTest,
                         ::testing::Values(IndexKind::kRStarTree,
                                           IndexKind::kGridFile,
                                           IndexKind::kLinearScan),
                         [](const ::testing::TestParamInfo<IndexKind>& info) {
                           switch (info.param) {
                             case IndexKind::kRStarTree:
                               return "RStarTree";
                             case IndexKind::kGridFile:
                               return "GridFile";
                             case IndexKind::kLinearScan:
                               return "LinearScan";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace humdex
