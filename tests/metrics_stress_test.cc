// Concurrency gate for the metrics layer, run under ThreadSanitizer by
// scripts/check.sh: 8 threads hammer one registry's counters, gauges, and
// histograms while a reader thread snapshots and exports continuously. The
// relaxed-atomic design must produce exact totals once the writers join.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"

namespace humdex::obs {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kOpsPerThread = 20000;

TEST(MetricsStress, ConcurrentWritersExactTotals) {
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  // Registered up front so the reader's exports are non-empty from the start
  // (writers still exercise concurrent create-or-get on the same names).
  registry.GetCounter("stress.ops");

  // A reader snapshotting and exporting while writers are mid-flight: totals
  // it sees are torn-free per metric even if mutually inconsistent.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto hists = registry.HistogramSnapshots();
      for (const auto& [name, snap] : hists) {
        std::uint64_t bucketed = 0;
        for (std::uint64_t b : snap.buckets) bucketed += b;
        EXPECT_EQ(bucketed, snap.count) << name;
      }
      std::string json = ExportJson(registry);
      EXPECT_FALSE(json.empty());
      std::string prom = ExportPrometheus(registry);
      EXPECT_FALSE(prom.empty());
    }
  });

  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      // Every thread resolves the same names: half the point of the stress
      // is concurrent create-or-get on the registry map itself.
      Counter& count = registry.GetCounter("stress.ops");
      Gauge& depth = registry.GetGauge("stress.depth");
      Histogram& latency = registry.GetHistogram("stress.latency_ns");
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        count.Increment();
        depth.Add(1);
        latency.Record((t * kOpsPerThread + i) % 100000);
        depth.Add(-1);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(registry.GetCounter("stress.ops").value(), kThreads * kOpsPerThread);
  EXPECT_EQ(registry.GetGauge("stress.depth").value(), 0);
  HistogramSnapshot snap = registry.GetHistogram("stress.latency_ns").Snapshot();
  EXPECT_EQ(snap.count, kThreads * kOpsPerThread);
  EXPECT_EQ(snap.max, 99999u);
}

TEST(MetricsStress, ConcurrentDistinctNames) {
  // Concurrent registration of disjoint names must neither lose entries nor
  // invalidate references handed out earlier.
  MetricsRegistry registry;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      for (std::size_t i = 0; i < 200; ++i) {
        std::string name =
            "stress.t" + std::to_string(t) + ".c" + std::to_string(i);
        registry.GetCounter(name).Increment(t + 1);
        registry.GetHistogram(name + "_ns").Record(i);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(registry.CounterValues().size(), kThreads * 200);
  EXPECT_EQ(registry.HistogramSnapshots().size(), kThreads * 200);
  EXPECT_EQ(registry.GetCounter("stress.t3.c7").value(), 4u);
}

TEST(MetricsStress, HistogramResetUnderLoad) {
  // Reset() racing Record() must keep the histogram internally consistent
  // (no torn counts; bucketed total == count after quiesce).
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("stress.reset_ns");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < 4; ++t) {
    writers.emplace_back([&h, &stop] {
      std::uint64_t v = 1;
      while (!stop.load(std::memory_order_acquire)) {
        h.Record(v);
        v = v * 1664525 + 1013904223;  // LCG walk over the bucket range
      }
    });
  }
  for (int i = 0; i < 50; ++i) h.Reset();
  stop.store(true, std::memory_order_release);
  for (std::thread& w : writers) w.join();

  HistogramSnapshot snap = h.Snapshot();
  std::uint64_t bucketed = 0;
  for (std::uint64_t b : snap.buckets) bucketed += b;
  EXPECT_EQ(bucketed, snap.count);
}

}  // namespace
}  // namespace humdex::obs
