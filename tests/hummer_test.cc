#include <gtest/gtest.h>

#include <cmath>

#include "music/hummer.h"
#include "music/pitch_tracker.h"
#include "music/song_generator.h"
#include "ts/dtw.h"
#include "ts/normal_form.h"
#include "ts/time_series.h"
#include "util/stats.h"

namespace humdex {
namespace {

Melody TestMelody() {
  Melody m;
  m.notes = {{60, 1}, {62, 1}, {64, 2}, {62, 1}, {60, 1}, {67, 2}, {65, 1}, {64, 2}};
  return m;
}

TEST(HummerTest, PerfectHummerReproducesMelodyShape) {
  Hummer hummer(HummerProfile::Perfect(), 1);
  Series hum = hummer.Hum(TestMelody());
  // A perfect hum at nominal tempo is the melody series at 50 frames/beat.
  Series expect = MelodyToSeries(TestMelody(), 50.0);
  ASSERT_EQ(hum.size(), expect.size());
  for (std::size_t i = 0; i < hum.size(); ++i) EXPECT_NEAR(hum[i], expect[i], 1e-9);
}

TEST(HummerTest, DeterministicForSeed) {
  Hummer a(HummerProfile::Good(), 9), b(HummerProfile::Good(), 9);
  Series ha = a.Hum(TestMelody()), hb = b.Hum(TestMelody());
  EXPECT_EQ(ha, hb);
}

TEST(HummerTest, TransposeShowsUpAsMeanShift) {
  // Across many performances the mean pitch offset should vary with roughly
  // the configured transpose stddev.
  HummerProfile p = HummerProfile::Perfect();
  p.transpose_stddev = 3.0;
  RunningStats offsets;
  Series base = MelodyToSeries(TestMelody(), 50.0);
  double base_mean = SeriesMean(base);
  for (int i = 0; i < 200; ++i) {
    Hummer hummer(p, 100 + static_cast<std::uint64_t>(i));
    offsets.Add(SeriesMean(hummer.Hum(TestMelody())) - base_mean);
  }
  EXPECT_NEAR(offsets.stddev(), 3.0, 0.7);
  EXPECT_NEAR(offsets.mean(), 0.0, 0.7);
}

TEST(HummerTest, TempoScaleChangesLength) {
  HummerProfile p = HummerProfile::Perfect();
  p.tempo_min = 2.0;
  p.tempo_max = 2.0;
  Hummer slow(p, 3);
  p.tempo_min = 0.5;
  p.tempo_max = 0.5;
  Hummer fast(p, 3);
  std::size_t slow_len = slow.Hum(TestMelody()).size();
  std::size_t fast_len = fast.Hum(TestMelody()).size();
  EXPECT_NEAR(static_cast<double>(slow_len) / fast_len, 4.0, 0.2);
}

TEST(HummerTest, NormalFormAbsorbsTransposeAndTempo) {
  // The core robustness claim (§3.3): after shift + UTW normalization a
  // transposed, tempo-scaled perfect hum matches the melody normal form.
  HummerProfile p = HummerProfile::Perfect();
  p.transpose_stddev = 5.0;
  p.tempo_min = 0.5;
  p.tempo_max = 2.0;
  Series melody_nf = NormalForm(MelodyToSeries(TestMelody(), 8.0), 128);
  for (int i = 0; i < 10; ++i) {
    Hummer hummer(p, 50 + static_cast<std::uint64_t>(i));
    Series hum_nf = NormalForm(hummer.Hum(TestMelody()), 128);
    // Frame rounding shifts note boundaries by a sample or two, which
    // Euclidean distance punishes but a small DTW band absorbs — the very
    // reason the paper pairs UTW with LDTW.
    EXPECT_LT(LdtwDistance(hum_nf, melody_nf, 6), 2.0);
  }
}

TEST(HummerTest, PoorSingerFartherThanGoodSinger) {
  SongGenerator gen(23);
  Melody m = gen.GeneratePhrase();
  Series nf = NormalForm(MelodyToSeries(m, 8.0), 128);
  double good_sum = 0.0, poor_sum = 0.0;
  for (int i = 0; i < 20; ++i) {
    Hummer good(HummerProfile::Good(), 200 + static_cast<std::uint64_t>(i));
    Hummer poor(HummerProfile::Poor(), 300 + static_cast<std::uint64_t>(i));
    good_sum += EuclideanDistance(NormalForm(good.Hum(m), 128), nf);
    poor_sum += EuclideanDistance(NormalForm(poor.Hum(m), 128), nf);
  }
  EXPECT_LT(good_sum, poor_sum);
}

TEST(PitchTrackerTest, DropoutsProduceSilentFrames) {
  PitchTrackerOptions opt;
  opt.dropout_prob = 0.2;
  opt.median_window = 1;
  PitchTracker tracker(opt, 5);
  Series x(1000, 60.0);
  Series tracked = tracker.Track(x);
  std::size_t silent = 0;
  for (double v : tracked) silent += IsSilentFrame(v) ? 1 : 0;
  EXPECT_GT(silent, 100u);
  EXPECT_LT(silent, 900u);
  Series voiced = RemoveSilence(tracked);
  EXPECT_EQ(voiced.size() + silent, tracked.size());
  for (double v : voiced) EXPECT_FALSE(IsSilentFrame(v));
}

TEST(PitchTrackerTest, OctaveErrorsDropByTwelve) {
  PitchTrackerOptions opt;
  opt.dropout_prob = 0.0;
  opt.octave_error_prob = 0.05;
  opt.median_window = 1;
  PitchTracker tracker(opt, 7);
  Series x(2000, 60.0);
  Series tracked = tracker.Track(x);
  bool saw_octave = false;
  for (double v : tracked) {
    EXPECT_TRUE(v == 60.0 || v == 48.0);
    saw_octave |= (v == 48.0);
  }
  EXPECT_TRUE(saw_octave);
}

TEST(PitchTrackerTest, NoErrorsMeansIdentity) {
  PitchTrackerOptions opt;
  opt.dropout_prob = 0.0;
  opt.octave_error_prob = 0.0;
  opt.median_window = 1;
  PitchTracker tracker(opt, 9);
  Series x{60, 61, 62, 63};
  EXPECT_EQ(tracker.Track(x), x);
}

TEST(PitchTrackerTest, MedianSmoothingRemovesSpikes) {
  PitchTrackerOptions opt;
  opt.dropout_prob = 0.0;
  opt.octave_error_prob = 0.0;
  opt.median_window = 5;
  PitchTracker tracker(opt, 11);
  Series x(50, 60.0);
  x[25] = 90.0;  // single-frame spike
  Series tracked = tracker.Track(x);
  EXPECT_DOUBLE_EQ(tracked[25], 60.0);
}

TEST(MedianFilterVoicedTest, SmoothsAroundSilence) {
  Series x{60, 60, SilentFrame(), 90, 60, 60};
  Series y = MedianFilterVoiced(x, 3);
  EXPECT_TRUE(IsSilentFrame(y[2]));
  // The spike at index 3 has voiced neighbors {90, 60}: median of {90,60}
  // (window excludes the silent frame) is 90 -> unchanged with window 3...
  // widen to 5 and the consensus overrides it.
  Series z = MedianFilterVoiced(x, 5);
  EXPECT_DOUBLE_EQ(z[3], 60.0);
  EXPECT_EQ(MedianFilterVoiced(x, 1).size(), x.size());
}

TEST(RemoveSilenceTest, EmptyAndAllSilent) {
  EXPECT_TRUE(RemoveSilence({}).empty());
  Series all_silent{SilentFrame(), SilentFrame()};
  EXPECT_TRUE(RemoveSilence(all_silent).empty());
}

}  // namespace
}  // namespace humdex
