// Chaos harness for the sharded serving engine: fault injection (torn WAL
// appends, checkpoint crashes at every write step, read errors, destroyed
// shard files) while queries keep flowing. The three invariants under test:
//
//   1. the process never aborts — every fault is a Status or a health
//      transition;
//   2. answers are never wrong — any result the engine does return is
//      bit-identical to the oracle restricted to the shards that answered,
//      and reduced coverage is always flagged via QueryStats::partial;
//   3. after repair (or reseed) the engine re-converges to answers
//      bit-identical to a never-faulted single engine.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "music/hummer.h"
#include "music/song_generator.h"
#include "serve/sharded_engine.h"
#include "util/env.h"

namespace humdex {
namespace serve {
namespace {

constexpr std::size_t kShards = 3;

std::vector<Melody> Corpus(std::size_t count, std::uint64_t seed = 11) {
  SongGenerator gen(seed);
  return gen.GeneratePhrases(count);
}

std::string FreshDir(const std::string& name, Env* env) {
  std::string dir = ::testing::TempDir() + name;
  ::mkdir(dir.c_str(), 0755);
  for (std::size_t s = 0; s < kShards + 1; ++s) {
    const std::string p = ShardedEngine::ShardPath(dir, s);
    for (const std::string& f : {p, QbhSystem::WalPathFor(p)}) {
      if (env->Exists(f)) {
        Status st = env->Delete(f);
        (void)st;
      }
    }
  }
  return dir;
}

void ExpectSameMatches(const std::vector<QbhMatch>& a,
                       const std::vector<QbhMatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].distance, b[i].distance);
    EXPECT_EQ(a[i].name, b[i].name);
  }
}

/// The "never wrong" oracle check: at a quiescent point, the sharded answer
/// must equal the single-engine ranking restricted to serving shards. When
/// nothing is excluded that is the full bit-identical answer.
void ExpectExactOverServingShards(ShardedEngine& sharded,
                                  const QbhSystem& oracle, const Series& hum,
                                  std::size_t top_k) {
  std::vector<bool> serving(sharded.num_shards());
  std::size_t excluded = 0;
  for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
    serving[s] =
        sharded.shard_status(s).health != ShardHealth::kQuarantined;
    if (!serving[s]) ++excluded;
  }
  QueryStats stats;
  auto got = sharded.Query(hum, top_k, QueryOptions(), &stats);
  auto full = oracle.Query(hum, oracle.size());
  std::vector<QbhMatch> expect;
  for (const QbhMatch& m : full) {
    if (serving[static_cast<std::size_t>(m.id) % sharded.num_shards()]) {
      expect.push_back(m);
    }
    if (expect.size() == top_k) break;
  }
  ExpectSameMatches(got, expect);
  if (excluded > 0) {
    EXPECT_TRUE(stats.partial);
    EXPECT_EQ(stats.shards_failed, excluded);
  } else {
    EXPECT_FALSE(stats.partial);
  }
}

struct ChaosRig {
  FaultInjectingEnv env{Env::Default()};
  std::vector<Melody> corpus;
  QbhSystem oracle;
  std::unique_ptr<ShardedEngine> engine;
  std::vector<Series> hums;
  std::string dir;

  explicit ChaosRig(const std::string& name, std::size_t melodies = 18)
      : corpus(Corpus(melodies)) {
    dir = FreshDir(name, Env::Default());
    for (const Melody& m : corpus) oracle.AddMelody(m);
    oracle.Build();
    ShardedOptions opts;
    opts.num_shards = kShards;
    auto r = ShardedEngine::Create(corpus, opts);
    EXPECT_TRUE(r.ok());
    engine = std::move(r).value();
    EXPECT_TRUE(engine->AttachAll(dir, &env).ok());
    Hummer hummer(HummerProfile::Good(), 42);
    for (std::size_t i = 0; i < 4; ++i) {
      hums.push_back(hummer.Hum(corpus[(i * 5) % corpus.size()]));
    }
  }
};

/// Queries hammering the engine from another thread while faults land. The
/// readers assert only invariants that hold at every instant: results are
/// well-formed, distances finite, ids route to real shards, and coverage
/// loss is flagged. (Exact oracle equality is checked at quiescent points by
/// the main thread — mid-mutation equality would race the mutation itself.)
class ReaderThreads {
 public:
  ReaderThreads(ShardedEngine& engine, std::vector<Series> hums)
      : engine_(engine), hums_(std::move(hums)) {
    for (int t = 0; t < 2; ++t) {
      threads_.emplace_back([this, t] { Run(t); });
    }
  }

  ~ReaderThreads() {
    stop_.store(true, std::memory_order_relaxed);
    for (std::thread& t : threads_) t.join();
  }

  std::size_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }
  bool saw_violation() const {
    return violation_.load(std::memory_order_relaxed);
  }

 private:
  void Run(int t) {
    std::size_t i = static_cast<std::size_t>(t);
    while (!stop_.load(std::memory_order_relaxed)) {
      const Series& hum = hums_[i++ % hums_.size()];
      QueryStats stats;
      auto got = engine_.Query(hum, 5, QueryOptions(), &stats);
      queries_.fetch_add(1, std::memory_order_relaxed);
      if (got.size() > 5) violation_.store(true);
      for (const QbhMatch& m : got) {
        if (!std::isfinite(m.distance) || m.id < 0) violation_.store(true);
        if (static_cast<std::size_t>(m.id) % engine_.num_shards() >=
            engine_.num_shards()) {
          violation_.store(true);
        }
      }
      // Coverage loss must always be flagged.
      if (stats.shards_failed > 0 && !stats.partial) violation_.store(true);
    }
  }

  ShardedEngine& engine_;
  std::vector<Series> hums_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> violation_{false};
  std::atomic<std::size_t> queries_{0};
};

TEST(ChaosTest, TornWalAppendDegradesTheShardButServingContinues) {
  ChaosRig rig("chaos_torn_append");
  ReaderThreads readers(*rig.engine, rig.hums);

  // Next insert routes to shard 0 (18 % 3); its WAL append tears mid-write.
  rig.env.CrashNextAppendAt(3);
  Melody extra = Corpus(1, 70)[0];
  auto id = rig.engine->Insert(extra);
  EXPECT_FALSE(id.ok());  // the write failed loudly, no abort

  // The shard is degraded read-only but still answering exactly: no data was
  // acknowledged, so answers still match the oracle in full.
  const ShardStatus status = rig.engine->shard_status(0);
  EXPECT_EQ(status.health, ShardHealth::kDegraded);
  EXPECT_TRUE(status.read_only);
  for (const Series& hum : rig.hums) {
    ExpectExactOverServingShards(*rig.engine, rig.oracle, hum, 5);
  }

  // Faults cleared, a successful checkpoint re-proves durability.
  rig.env.ClearFaults();
  ASSERT_TRUE(rig.engine->CheckpointAll().ok());
  EXPECT_EQ(rig.engine->shard_status(0).health, ShardHealth::kHealthy);
  EXPECT_FALSE(rig.engine->shard_status(0).read_only);
  EXPECT_GT(readers.queries(), 0u);
  EXPECT_FALSE(readers.saw_violation());
}

TEST(ChaosTest, CheckpointCrashAtEveryStepNeverAbortsOrCorruptsAnswers) {
  ChaosRig rig("chaos_ckpt_steps");
  using WriteStep = FaultInjectingEnv::WriteStep;
  for (WriteStep step : {WriteStep::kOpenTemp, WriteStep::kWriteBody,
                         WriteStep::kSync, WriteStep::kRename}) {
    rig.env.CrashNextWriteAt(step, 5);
    Status st = rig.engine->CheckpointAll();
    EXPECT_FALSE(st.ok());  // the crashed checkpoint reported its failure

    // Still serving, still exact (checkpoints never touch the in-memory
    // index), with the failed shard degraded but not quarantined.
    for (const Series& hum : rig.hums) {
      ExpectExactOverServingShards(*rig.engine, rig.oracle, hum, 5);
    }
    rig.env.ClearFaults();
    ASSERT_TRUE(rig.engine->CheckpointAll().ok());
    for (std::size_t s = 0; s < kShards; ++s) {
      EXPECT_EQ(rig.engine->shard_status(s).health, ShardHealth::kHealthy);
    }
  }
}

TEST(ChaosTest, RepeatedIoFailuresEscalateToQuarantine) {
  ChaosRig rig("chaos_escalate");
  const std::size_t limit = rig.engine->options().quarantine_after_io_errors;
  // Every checkpoint write fails; after `limit` consecutive failures the
  // shard moves from degraded to quarantined rather than flapping forever.
  for (std::size_t i = 0; i < limit; ++i) {
    rig.env.CrashNextWriteAt(FaultInjectingEnv::WriteStep::kSync, 0);
    Status st = rig.engine->CheckpointAll();
    EXPECT_FALSE(st.ok());
    rig.env.ClearFaults();
  }
  bool any_quarantined = false;
  for (std::size_t s = 0; s < kShards; ++s) {
    any_quarantined = any_quarantined ||
                      rig.engine->shard_status(s).health ==
                          ShardHealth::kQuarantined;
  }
  EXPECT_TRUE(any_quarantined);
  // Still degraded, never wrong.
  for (const Series& hum : rig.hums) {
    ExpectExactOverServingShards(*rig.engine, rig.oracle, hum, 5);
  }
}

TEST(ChaosTest, DestroyedShardReconvergesBitExactAfterRepairOrReseed) {
  ChaosRig rig("chaos_destroyed");
  ReaderThreads readers(*rig.engine, rig.hums);

  // Checkpoint everything, then destroy shard 1's checkpoint on disk and
  // quarantine it (the ops path a scrubber would take on CRC failure).
  ASSERT_TRUE(rig.engine->CheckpointAll().ok());
  ASSERT_TRUE(Env::Default()
                  ->AtomicWriteFile(ShardedEngine::ShardPath(rig.dir, 1),
                                    "not a humdex file at all")
                  .ok());
  {
    const std::string wal =
        QbhSystem::WalPathFor(ShardedEngine::ShardPath(rig.dir, 1));
    if (Env::Default()->Exists(wal)) {
      Status st = Env::Default()->Delete(wal);
      (void)st;
    }
  }
  rig.engine->QuarantineShard(1);

  // Mid-outage: flagged partial, exact over the survivors.
  for (const Series& hum : rig.hums) {
    ExpectExactOverServingShards(*rig.engine, rig.oracle, hum, 5);
  }

  // Repair from local storage cannot work (the file is garbage), so the
  // shard stays quarantined; reseed from authoritative rows brings it back.
  EXPECT_FALSE(rig.engine->RepairShard(1).ok());
  EXPECT_EQ(rig.engine->shard_status(1).health, ShardHealth::kQuarantined);

  std::vector<std::pair<std::int64_t, Melody>> rows;
  for (std::size_t g = 1; g < rig.corpus.size(); g += kShards) {
    rows.emplace_back(static_cast<std::int64_t>(g), rig.corpus[g]);
  }
  ASSERT_TRUE(rig.engine->ReseedShard(1, std::move(rows)).ok());
  EXPECT_EQ(rig.engine->shard_status(1).health, ShardHealth::kHealthy);

  // Re-converged: bit-identical to the never-faulted oracle, full coverage.
  for (const Series& hum : rig.hums) {
    ExpectExactOverServingShards(*rig.engine, rig.oracle, hum, 5);
  }
  EXPECT_GT(readers.queries(), 0u);
  EXPECT_FALSE(readers.saw_violation());
}

TEST(ChaosTest, TornCheckpointRepairsFromItsOwnStorage) {
  ChaosRig rig("chaos_torn_ckpt");
  ASSERT_TRUE(rig.engine->CheckpointAll().ok());

  // Truncate shard 2's checkpoint: the CRC trailer (and possibly the last
  // melody block) is gone. Strict recovery refuses it; salvage keeps every
  // melody whose block survived, with ids stable.
  const std::string path = ShardedEngine::ShardPath(rig.dir, 2);
  std::string bytes;
  ASSERT_TRUE(Env::Default()->ReadFile(path, &bytes).ok());
  ASSERT_GT(bytes.size(), 20u);
  ASSERT_TRUE(
      Env::Default()
          ->AtomicWriteFile(path, bytes.substr(0, bytes.size() - 15))
          .ok());
  {
    const std::string wal = QbhSystem::WalPathFor(path);
    if (Env::Default()->Exists(wal)) {
      Status st = Env::Default()->Delete(wal);
      (void)st;
    }
  }
  rig.engine->QuarantineShard(2);

  Status st = rig.engine->RepairShard(2);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const ShardStatus status = rig.engine->shard_status(2);
  EXPECT_NE(status.health, ShardHealth::kQuarantined);
  EXPECT_EQ(status.repairs, 1u);

  // Whatever salvage kept is served with the right global ids: every
  // returned id's distance matches the oracle's distance for that same id.
  for (const Series& hum : rig.hums) {
    QueryStats stats;
    auto got = rig.engine->Query(hum, 5, QueryOptions(), &stats);
    auto full = rig.oracle.Query(hum, rig.oracle.size());
    for (const QbhMatch& m : got) {
      bool found = false;
      for (const QbhMatch& o : full) {
        if (o.id == m.id) {
          EXPECT_EQ(o.distance, m.distance);
          EXPECT_EQ(o.name, m.name);
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "id " << m.id << " is not in the oracle corpus";
    }
    // If salvage dropped anything the shard is lossy and answers say so.
    if (status.lossy) EXPECT_TRUE(stats.partial);
  }
}

TEST(ChaosTest, BackgroundRepairRejoinsAQuarantinedShardUnderTraffic) {
  ChaosRig rig("chaos_bg_repair");
  ASSERT_TRUE(rig.engine->CheckpointAll().ok());
  ReaderThreads readers(*rig.engine, rig.hums);

  rig.engine->QuarantineShard(0);
  rig.engine->StartBackgroundRepair(1);
  // The shard's storage is intact, so the background pass rejoins it.
  for (int i = 0; i < 2000; ++i) {
    if (rig.engine->shard_status(0).health == ShardHealth::kHealthy) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rig.engine->StopBackgroundRepair();
  EXPECT_EQ(rig.engine->shard_status(0).health, ShardHealth::kHealthy);

  for (const Series& hum : rig.hums) {
    ExpectExactOverServingShards(*rig.engine, rig.oracle, hum, 5);
  }
  EXPECT_GT(readers.queries(), 0u);
  EXPECT_FALSE(readers.saw_violation());
}

TEST(ChaosTest, RandomReadFaultsDuringOpenQuarantineButNeverAbort) {
  ChaosRig rig("chaos_open_faults");
  auto extra = Corpus(3, 71);
  for (Melody& m : extra) {
    ASSERT_TRUE(rig.engine->Insert(m).ok());
    ASSERT_TRUE(rig.oracle.Insert(m).ok());
  }
  ASSERT_TRUE(rig.engine->CheckpointAll().ok());
  rig.engine.reset();

  // Reopen under injected read failures: some shards may quarantine, the
  // engine must still come up if any shard survives, and whatever serves is
  // exact. Exercise several fault phases.
  for (std::uint64_t phase = 1; phase <= 4; ++phase) {
    FaultInjectingEnv flaky(Env::Default());
    flaky.FailReadsRandomly(phase, 3);
    ShardedOptions opts;
    opts.num_shards = kShards;
    std::vector<RecoveryStats> recovery;
    auto r = ShardedEngine::Open(rig.dir, opts, &flaky, &recovery);
    flaky.ClearFaults();
    if (!r.ok()) continue;  // every shard failed to load: also legal
    auto& engine = *r.value();
    for (const Series& hum : rig.hums) {
      ExpectExactOverServingShards(engine, rig.oracle, hum, 5);
    }
  }

  // And with no faults, recovery is total and bit-exact.
  ShardedOptions opts;
  opts.num_shards = kShards;
  auto r = ShardedEngine::Open(rig.dir, opts, &rig.env);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const Series& hum : rig.hums) {
    ExpectExactOverServingShards(*r.value(), rig.oracle, hum, 5);
  }
}

}  // namespace
}  // namespace serve
}  // namespace humdex
