// Chaos harness for the sharded serving engine: fault injection (torn WAL
// appends, checkpoint crashes at every write step, read errors, destroyed
// shard files) while queries keep flowing. The three invariants under test:
//
//   1. the process never aborts — every fault is a Status or a health
//      transition;
//   2. answers are never wrong — any result the engine does return is
//      bit-identical to the oracle restricted to the shards that answered,
//      and reduced coverage is always flagged via QueryStats::partial;
//   3. after repair (or reseed) the engine re-converges to answers
//      bit-identical to a never-faulted single engine.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "music/hummer.h"
#include "music/song_generator.h"
#include "serve/sharded_engine.h"
#include "util/env.h"

namespace humdex {
namespace serve {
namespace {

constexpr std::size_t kShards = 3;

std::vector<Melody> Corpus(std::size_t count, std::uint64_t seed = 11) {
  SongGenerator gen(seed);
  return gen.GeneratePhrases(count);
}

std::string FreshDir(const std::string& name, Env* env) {
  std::string dir = ::testing::TempDir() + name;
  ::mkdir(dir.c_str(), 0755);
  for (std::size_t s = 0; s < kShards + 1; ++s) {
    const std::string p = ShardedEngine::ShardPath(dir, s);
    for (const std::string& f : {p, QbhSystem::WalPathFor(p)}) {
      if (env->Exists(f)) {
        Status st = env->Delete(f);
        (void)st;
      }
    }
  }
  return dir;
}

void ExpectSameMatches(const std::vector<QbhMatch>& a,
                       const std::vector<QbhMatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].distance, b[i].distance);
    EXPECT_EQ(a[i].name, b[i].name);
  }
}

/// The "never wrong" oracle check: at a quiescent point, the sharded answer
/// must equal the single-engine ranking restricted to serving shards. When
/// nothing is excluded that is the full bit-identical answer.
void ExpectExactOverServingShards(ShardedEngine& sharded,
                                  const QbhSystem& oracle, const Series& hum,
                                  std::size_t top_k) {
  std::vector<bool> serving(sharded.num_shards());
  std::size_t excluded = 0;
  for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
    serving[s] =
        sharded.shard_status(s).health != ShardHealth::kQuarantined;
    if (!serving[s]) ++excluded;
  }
  QueryStats stats;
  auto got = sharded.Query(hum, top_k, QueryOptions(), &stats);
  auto full = oracle.Query(hum, oracle.size());
  std::vector<QbhMatch> expect;
  for (const QbhMatch& m : full) {
    if (serving[static_cast<std::size_t>(m.id) % sharded.num_shards()]) {
      expect.push_back(m);
    }
    if (expect.size() == top_k) break;
  }
  ExpectSameMatches(got, expect);
  if (excluded > 0) {
    EXPECT_TRUE(stats.partial);
    EXPECT_EQ(stats.shards_failed, excluded);
  } else {
    EXPECT_FALSE(stats.partial);
  }
}

struct ChaosRig {
  FaultInjectingEnv env{Env::Default()};
  std::vector<Melody> corpus;
  QbhSystem oracle;
  std::unique_ptr<ShardedEngine> engine;
  std::vector<Series> hums;
  std::string dir;

  explicit ChaosRig(const std::string& name, std::size_t melodies = 18)
      : corpus(Corpus(melodies)) {
    dir = FreshDir(name, Env::Default());
    for (const Melody& m : corpus) oracle.AddMelody(m);
    oracle.Build();
    ShardedOptions opts;
    opts.num_shards = kShards;
    auto r = ShardedEngine::Create(corpus, opts);
    EXPECT_TRUE(r.ok());
    engine = std::move(r).value();
    EXPECT_TRUE(engine->AttachAll(dir, &env).ok());
    Hummer hummer(HummerProfile::Good(), 42);
    for (std::size_t i = 0; i < 4; ++i) {
      hums.push_back(hummer.Hum(corpus[(i * 5) % corpus.size()]));
    }
  }
};

/// Queries hammering the engine from another thread while faults land. The
/// readers assert only invariants that hold at every instant: results are
/// well-formed, distances finite, ids route to real shards, and coverage
/// loss is flagged. (Exact oracle equality is checked at quiescent points by
/// the main thread — mid-mutation equality would race the mutation itself.)
class ReaderThreads {
 public:
  ReaderThreads(ShardedEngine& engine, std::vector<Series> hums)
      : engine_(engine), hums_(std::move(hums)) {
    for (int t = 0; t < 2; ++t) {
      threads_.emplace_back([this, t] { Run(t); });
    }
  }

  ~ReaderThreads() {
    stop_.store(true, std::memory_order_relaxed);
    for (std::thread& t : threads_) t.join();
  }

  std::size_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }
  bool saw_violation() const {
    return violation_.load(std::memory_order_relaxed);
  }

 private:
  void Run(int t) {
    std::size_t i = static_cast<std::size_t>(t);
    while (!stop_.load(std::memory_order_relaxed)) {
      const Series& hum = hums_[i++ % hums_.size()];
      QueryStats stats;
      auto got = engine_.Query(hum, 5, QueryOptions(), &stats);
      queries_.fetch_add(1, std::memory_order_relaxed);
      if (got.size() > 5) violation_.store(true);
      for (const QbhMatch& m : got) {
        if (!std::isfinite(m.distance) || m.id < 0) violation_.store(true);
        if (static_cast<std::size_t>(m.id) % engine_.num_shards() >=
            engine_.num_shards()) {
          violation_.store(true);
        }
      }
      // Coverage loss must always be flagged.
      if (stats.shards_failed > 0 && !stats.partial) violation_.store(true);
    }
  }

  ShardedEngine& engine_;
  std::vector<Series> hums_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> violation_{false};
  std::atomic<std::size_t> queries_{0};
};

TEST(ChaosTest, TornWalAppendDegradesTheShardButServingContinues) {
  ChaosRig rig("chaos_torn_append");
  ReaderThreads readers(*rig.engine, rig.hums);

  // Next insert routes to shard 0 (18 % 3); its WAL append tears mid-write.
  rig.env.CrashNextAppendAt(3);
  Melody extra = Corpus(1, 70)[0];
  auto id = rig.engine->Insert(extra);
  EXPECT_FALSE(id.ok());  // the write failed loudly, no abort

  // The shard is degraded read-only but still answering exactly: no data was
  // acknowledged, so answers still match the oracle in full.
  const ShardStatus status = rig.engine->shard_status(0);
  EXPECT_EQ(status.health, ShardHealth::kDegraded);
  EXPECT_TRUE(status.read_only);
  for (const Series& hum : rig.hums) {
    ExpectExactOverServingShards(*rig.engine, rig.oracle, hum, 5);
  }

  // Faults cleared, a successful checkpoint re-proves durability.
  rig.env.ClearFaults();
  ASSERT_TRUE(rig.engine->CheckpointAll().ok());
  EXPECT_EQ(rig.engine->shard_status(0).health, ShardHealth::kHealthy);
  EXPECT_FALSE(rig.engine->shard_status(0).read_only);
  EXPECT_GT(readers.queries(), 0u);
  EXPECT_FALSE(readers.saw_violation());
}

TEST(ChaosTest, CheckpointCrashAtEveryStepNeverAbortsOrCorruptsAnswers) {
  ChaosRig rig("chaos_ckpt_steps");
  using WriteStep = FaultInjectingEnv::WriteStep;
  for (WriteStep step : {WriteStep::kOpenTemp, WriteStep::kWriteBody,
                         WriteStep::kSync, WriteStep::kRename}) {
    rig.env.CrashNextWriteAt(step, 5);
    Status st = rig.engine->CheckpointAll();
    EXPECT_FALSE(st.ok());  // the crashed checkpoint reported its failure

    // Still serving, still exact (checkpoints never touch the in-memory
    // index), with the failed shard degraded but not quarantined.
    for (const Series& hum : rig.hums) {
      ExpectExactOverServingShards(*rig.engine, rig.oracle, hum, 5);
    }
    rig.env.ClearFaults();
    ASSERT_TRUE(rig.engine->CheckpointAll().ok());
    for (std::size_t s = 0; s < kShards; ++s) {
      EXPECT_EQ(rig.engine->shard_status(s).health, ShardHealth::kHealthy);
    }
  }
}

TEST(ChaosTest, RepeatedIoFailuresEscalateToQuarantine) {
  ChaosRig rig("chaos_escalate");
  const std::size_t limit = rig.engine->options().quarantine_after_io_errors;
  // Every checkpoint write fails; after `limit` consecutive failures the
  // shard moves from degraded to quarantined rather than flapping forever.
  for (std::size_t i = 0; i < limit; ++i) {
    rig.env.CrashNextWriteAt(FaultInjectingEnv::WriteStep::kSync, 0);
    Status st = rig.engine->CheckpointAll();
    EXPECT_FALSE(st.ok());
    rig.env.ClearFaults();
  }
  bool any_quarantined = false;
  for (std::size_t s = 0; s < kShards; ++s) {
    any_quarantined = any_quarantined ||
                      rig.engine->shard_status(s).health ==
                          ShardHealth::kQuarantined;
  }
  EXPECT_TRUE(any_quarantined);
  // Still degraded, never wrong.
  for (const Series& hum : rig.hums) {
    ExpectExactOverServingShards(*rig.engine, rig.oracle, hum, 5);
  }
}

TEST(ChaosTest, DestroyedShardReconvergesBitExactAfterRepairOrReseed) {
  ChaosRig rig("chaos_destroyed");
  ReaderThreads readers(*rig.engine, rig.hums);

  // Checkpoint everything, then destroy shard 1's checkpoint on disk and
  // quarantine it (the ops path a scrubber would take on CRC failure).
  ASSERT_TRUE(rig.engine->CheckpointAll().ok());
  ASSERT_TRUE(Env::Default()
                  ->AtomicWriteFile(ShardedEngine::ShardPath(rig.dir, 1),
                                    "not a humdex file at all")
                  .ok());
  {
    const std::string wal =
        QbhSystem::WalPathFor(ShardedEngine::ShardPath(rig.dir, 1));
    if (Env::Default()->Exists(wal)) {
      Status st = Env::Default()->Delete(wal);
      (void)st;
    }
  }
  rig.engine->QuarantineShard(1);

  // Mid-outage: flagged partial, exact over the survivors.
  for (const Series& hum : rig.hums) {
    ExpectExactOverServingShards(*rig.engine, rig.oracle, hum, 5);
  }

  // Repair from local storage cannot work (the file is garbage), so the
  // shard stays quarantined; reseed from authoritative rows brings it back.
  EXPECT_FALSE(rig.engine->RepairShard(1).ok());
  EXPECT_EQ(rig.engine->shard_status(1).health, ShardHealth::kQuarantined);

  std::vector<std::pair<std::int64_t, Melody>> rows;
  for (std::size_t g = 1; g < rig.corpus.size(); g += kShards) {
    rows.emplace_back(static_cast<std::int64_t>(g), rig.corpus[g]);
  }
  ASSERT_TRUE(rig.engine->ReseedShard(1, std::move(rows)).ok());
  EXPECT_EQ(rig.engine->shard_status(1).health, ShardHealth::kHealthy);

  // Re-converged: bit-identical to the never-faulted oracle, full coverage.
  for (const Series& hum : rig.hums) {
    ExpectExactOverServingShards(*rig.engine, rig.oracle, hum, 5);
  }
  EXPECT_GT(readers.queries(), 0u);
  EXPECT_FALSE(readers.saw_violation());
}

TEST(ChaosTest, TornCheckpointRepairsFromItsOwnStorage) {
  ChaosRig rig("chaos_torn_ckpt");
  ASSERT_TRUE(rig.engine->CheckpointAll().ok());

  // Truncate shard 2's checkpoint: the CRC trailer (and possibly the last
  // melody block) is gone. Strict recovery refuses it; salvage keeps every
  // melody whose block survived, with ids stable.
  const std::string path = ShardedEngine::ShardPath(rig.dir, 2);
  std::string bytes;
  ASSERT_TRUE(Env::Default()->ReadFile(path, &bytes).ok());
  ASSERT_GT(bytes.size(), 20u);
  ASSERT_TRUE(
      Env::Default()
          ->AtomicWriteFile(path, bytes.substr(0, bytes.size() - 15))
          .ok());
  {
    const std::string wal = QbhSystem::WalPathFor(path);
    if (Env::Default()->Exists(wal)) {
      Status st = Env::Default()->Delete(wal);
      (void)st;
    }
  }
  rig.engine->QuarantineShard(2);

  Status st = rig.engine->RepairShard(2);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const ShardStatus status = rig.engine->shard_status(2);
  EXPECT_NE(status.health, ShardHealth::kQuarantined);
  EXPECT_EQ(status.repairs, 1u);

  // Whatever salvage kept is served with the right global ids: every
  // returned id's distance matches the oracle's distance for that same id.
  for (const Series& hum : rig.hums) {
    QueryStats stats;
    auto got = rig.engine->Query(hum, 5, QueryOptions(), &stats);
    auto full = rig.oracle.Query(hum, rig.oracle.size());
    for (const QbhMatch& m : got) {
      bool found = false;
      for (const QbhMatch& o : full) {
        if (o.id == m.id) {
          EXPECT_EQ(o.distance, m.distance);
          EXPECT_EQ(o.name, m.name);
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "id " << m.id << " is not in the oracle corpus";
    }
    // If salvage dropped anything the shard is lossy and answers say so.
    if (status.lossy) EXPECT_TRUE(stats.partial);
  }
}

TEST(ChaosTest, BackgroundRepairRejoinsAQuarantinedShardUnderTraffic) {
  ChaosRig rig("chaos_bg_repair");
  ASSERT_TRUE(rig.engine->CheckpointAll().ok());
  ReaderThreads readers(*rig.engine, rig.hums);

  rig.engine->QuarantineShard(0);
  rig.engine->StartBackgroundRepair(1);
  // The shard's storage is intact, so the background pass rejoins it.
  for (int i = 0; i < 2000; ++i) {
    if (rig.engine->shard_status(0).health == ShardHealth::kHealthy) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rig.engine->StopBackgroundRepair();
  EXPECT_EQ(rig.engine->shard_status(0).health, ShardHealth::kHealthy);

  for (const Series& hum : rig.hums) {
    ExpectExactOverServingShards(*rig.engine, rig.oracle, hum, 5);
  }
  EXPECT_GT(readers.queries(), 0u);
  EXPECT_FALSE(readers.saw_violation());
}

TEST(ChaosTest, RandomReadFaultsDuringOpenQuarantineButNeverAbort) {
  ChaosRig rig("chaos_open_faults");
  auto extra = Corpus(3, 71);
  for (Melody& m : extra) {
    ASSERT_TRUE(rig.engine->Insert(m).ok());
    ASSERT_TRUE(rig.oracle.Insert(m).ok());
  }
  ASSERT_TRUE(rig.engine->CheckpointAll().ok());
  rig.engine.reset();

  // Reopen under injected read failures: some shards may quarantine, the
  // engine must still come up if any shard survives, and whatever serves is
  // exact. Exercise several fault phases.
  for (std::uint64_t phase = 1; phase <= 4; ++phase) {
    FaultInjectingEnv flaky(Env::Default());
    flaky.FailReadsRandomly(phase, 3);
    ShardedOptions opts;
    opts.num_shards = kShards;
    std::vector<RecoveryStats> recovery;
    auto r = ShardedEngine::Open(rig.dir, opts, &flaky, &recovery);
    flaky.ClearFaults();
    if (!r.ok()) continue;  // every shard failed to load: also legal
    auto& engine = *r.value();
    for (const Series& hum : rig.hums) {
      ExpectExactOverServingShards(engine, rig.oracle, hum, 5);
    }
  }

  // And with no faults, recovery is total and bit-exact.
  ShardedOptions opts;
  opts.num_shards = kShards;
  auto r = ShardedEngine::Open(rig.dir, opts, &rig.env);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const Series& hum : rig.hums) {
    ExpectExactOverServingShards(*r.value(), rig.oracle, hum, 5);
  }
}

// --- Replication chaos -------------------------------------------------------
//
// The same storm, aimed at replica groups: crash a replica at every WAL
// tear point and every checkpoint write step, fail reads mid-ship, destroy
// a replica's storage outright — the engine must never abort, never answer
// wrong, flag partial only when a *whole group* is down, and after
// re-replication the replicas must be digest-identical with answers
// bit-identical to a never-failed single engine.

/// ChaosRig with replication = 2 and a dir cleared of every replica's files.
struct ReplicatedChaosRig {
  FaultInjectingEnv env{Env::Default()};
  std::vector<Melody> corpus;
  QbhSystem oracle;
  std::unique_ptr<ShardedEngine> engine;
  std::vector<Series> hums;
  std::string dir;

  explicit ReplicatedChaosRig(const std::string& name,
                              std::size_t melodies = 18)
      : corpus(Corpus(melodies)) {
    dir = ::testing::TempDir() + name;
    ::mkdir(dir.c_str(), 0755);
    Env* base = Env::Default();
    for (std::size_t s = 0; s < kShards + 1; ++s) {
      for (std::size_t r = 0; r < 3; ++r) {
        const std::string p = ShardedEngine::ReplicaPath(dir, s, r);
        for (const std::string& f : {p, QbhSystem::WalPathFor(p)}) {
          if (base->Exists(f)) {
            Status st = base->Delete(f);
            (void)st;
          }
        }
      }
    }
    for (const Melody& m : corpus) oracle.AddMelody(m);
    oracle.Build();
    ShardedOptions opts;
    opts.num_shards = kShards;
    opts.replication = 2;
    auto r = ShardedEngine::Create(corpus, opts);
    EXPECT_TRUE(r.ok());
    engine = std::move(r).value();
    EXPECT_TRUE(engine->AttachAll(dir, &env).ok());
    Hummer hummer(HummerProfile::Good(), 42);
    for (std::size_t i = 0; i < 4; ++i) {
      hums.push_back(hummer.Hum(corpus[(i * 5) % corpus.size()]));
    }
  }

  void ExpectGroupsDigestIdentical() {
    for (std::size_t s = 0; s < engine->num_shards(); ++s) {
      std::vector<std::uint32_t> digests;
      for (std::size_t r = 0; r < engine->replication(); ++r) {
        auto d = engine->ReplicaDigest(s, r);
        if (d.ok()) digests.push_back(d.value());
      }
      ASSERT_FALSE(digests.empty());
      for (std::uint32_t d : digests) EXPECT_EQ(d, digests[0]);
    }
  }
};

TEST(ReplicationChaosTest, AppendCrashAtEveryTearPointQuarantinesOnlyTheVictim) {
  ReplicatedChaosRig rig("chaos_rep_torn_append");
  ReaderThreads readers(*rig.engine, rig.hums);

  auto extra = Corpus(4, 61);
  const std::size_t torn[] = {0, 3, 8, 256};
  for (std::size_t i = 0; i < 4; ++i) {
    // The fan-out hits replica 0 of the target group first; its WAL append
    // crashes with a torn tail. The write must still succeed via replica 1,
    // the victim must be quarantined as diverged (never silently behind),
    // and no answer may go partial — the group still serves.
    rig.env.CrashNextAppendAt(torn[i]);
    auto id = rig.engine->Insert(extra[i]);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_TRUE(rig.oracle.Insert(extra[i]).ok());
    const std::size_t s = static_cast<std::size_t>(id.value()) % kShards;
    EXPECT_EQ(rig.engine->replica_status(s, 0).health,
              ShardHealth::kQuarantined);
    EXPECT_EQ(rig.engine->shard_status(s).serving_replicas, 1u);
    EXPECT_EQ(rig.engine->serving_shards(), kShards);
    for (const Series& hum : rig.hums) {
      ExpectExactOverServingShards(*rig.engine, rig.oracle, hum, 5);
    }

    // Re-replicate from the surviving peer and converge.
    rig.env.ClearFaults();
    ASSERT_TRUE(rig.engine->RepairShard(s).ok());
    EXPECT_EQ(rig.engine->shard_status(s).serving_replicas, 2u);
    rig.ExpectGroupsDigestIdentical();
  }
  for (const Series& hum : rig.hums) {
    ExpectExactOverServingShards(*rig.engine, rig.oracle, hum, 5);
  }
  EXPECT_GT(readers.queries(), 0u);
  EXPECT_FALSE(readers.saw_violation());
}

TEST(ReplicationChaosTest, ShipCrashAtEveryWriteStepFailsCleanAndRetries) {
  ReplicatedChaosRig rig("chaos_rep_ship_crash");
  ReaderThreads readers(*rig.engine, rig.hums);

  for (int step = 0; step < FaultInjectingEnv::kWriteStepCount; ++step) {
    rig.engine->QuarantineReplica(1, 1);
    // The ship's first durable write crashes at this step. The attempt must
    // fail as a Status (never an abort), the destination must stay
    // quarantined with nothing half-swapped, and the group keeps serving.
    rig.env.CrashNextWriteAt(
        static_cast<FaultInjectingEnv::WriteStep>(step),
        step == static_cast<int>(FaultInjectingEnv::WriteStep::kWriteBody)
            ? 7
            : 0);
    Status st = rig.engine->ShipSnapshot(1, 0, 1);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(rig.engine->replica_status(1, 1).health,
              ShardHealth::kQuarantined);
    EXPECT_EQ(rig.engine->serving_shards(), kShards);
    for (const Series& hum : rig.hums) {
      ExpectExactOverServingShards(*rig.engine, rig.oracle, hum, 5);
    }

    // The crash consumed, the same ship succeeds.
    rig.env.ClearFaults();
    ASSERT_TRUE(rig.engine->ShipSnapshot(1, 0, 1).ok());
    EXPECT_EQ(rig.engine->shard_status(1).serving_replicas, 2u);
    rig.ExpectGroupsDigestIdentical();
  }
  EXPECT_GT(readers.queries(), 0u);
  EXPECT_FALSE(readers.saw_violation());
}

TEST(ReplicationChaosTest, ReadFaultsDuringShipFailCleanAndRetry) {
  ReplicatedChaosRig rig("chaos_rep_ship_read");
  rig.engine->QuarantineReplica(2, 0);

  // A failed read of the source checkpoint aborts the ship cleanly.
  rig.env.FailNextReads(1);
  Status st = rig.engine->ShipSnapshot(2, 1, 0);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(rig.engine->replica_status(2, 0).health,
            ShardHealth::kQuarantined);

  // A truncated read ships corrupt bytes: the rebuild fails its open or its
  // digest proof, and the destination still never serves them.
  rig.env.ClearFaults();
  rig.env.TruncateNextRead(24);
  st = rig.engine->ShipSnapshot(2, 1, 0);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(rig.engine->replica_status(2, 0).health,
            ShardHealth::kQuarantined);

  rig.env.ClearFaults();
  ASSERT_TRUE(rig.engine->ShipSnapshot(2, 1, 0).ok());
  EXPECT_EQ(rig.engine->shard_status(2).serving_replicas, 2u);
  rig.ExpectGroupsDigestIdentical();
  for (const Series& hum : rig.hums) {
    ExpectExactOverServingShards(*rig.engine, rig.oracle, hum, 5);
  }
}

TEST(ReplicationChaosTest, DestroyedReplicaStorageReplicatesFromItsPeer) {
  ReplicatedChaosRig rig("chaos_rep_destroyed");
  Env* base = Env::Default();
  {
    // Readers hammer the engine through the destruction + re-ship below;
    // they must drain before the engine is torn down for the reopen.
    ReaderThreads readers(*rig.engine, rig.hums);

    // Replica 0 of shard 0 loses its storage to garbage; its WAL vanishes.
    const std::string victim = ShardedEngine::ReplicaPath(rig.dir, 0, 0);
    ASSERT_TRUE(base->AtomicWriteFile(victim, "\x00\xff garbage").ok());
    Status deleted = base->Delete(QbhSystem::WalPathFor(victim));
    (void)deleted;
    rig.engine->QuarantineReplica(0, 0);

    // Writes keep flowing to the survivor while the victim is out.
    auto extra = Corpus(3, 67);
    for (Melody& m : extra) {
      ASSERT_TRUE(rig.engine->Insert(m).ok());
      ASSERT_TRUE(rig.oracle.Insert(m).ok());
    }

    // Repair ships from the peer (own storage is garbage) and converges —
    // including the writes the victim missed.
    ASSERT_TRUE(rig.engine->RepairReplica(0, 0).ok());
    EXPECT_EQ(rig.engine->shard_status(0).serving_replicas, 2u);
    rig.ExpectGroupsDigestIdentical();
    for (const Series& hum : rig.hums) {
      ExpectExactOverServingShards(*rig.engine, rig.oracle, hum, 5);
    }
    EXPECT_FALSE(readers.saw_violation());
  }

  // The shipped replica is durable: reopen from disk, kill the *other* side
  // everywhere, and the rebuilt copies alone must answer bit-exact.
  rig.engine.reset();
  ShardedOptions opts;
  opts.num_shards = kShards;
  opts.replication = 2;
  auto reopened = ShardedEngine::Open(rig.dir, opts, &rig.env);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  rig.engine = std::move(reopened).value();
  for (std::size_t s = 0; s < kShards; ++s) {
    rig.engine->QuarantineReplica(s, 1);
  }
  for (const Series& hum : rig.hums) {
    QueryStats stats;
    ExpectSameMatches(rig.engine->Query(hum, 5, QueryOptions(), &stats),
                      rig.oracle.Query(hum, 5));
    EXPECT_FALSE(stats.partial);
  }
}

TEST(ReplicationChaosTest, EveryGroupDownToOneReplicaStaysExactUnderTraffic) {
  ReplicatedChaosRig rig("chaos_rep_rminus1");
  ReaderThreads readers(*rig.engine, rig.hums);

  // R-1 replicas of every group die — a different one per group.
  for (std::size_t s = 0; s < kShards; ++s) {
    rig.engine->QuarantineReplica(s, s % 2);
  }
  EXPECT_EQ(rig.engine->serving_shards(), kShards);
  for (const Series& hum : rig.hums) {
    QueryStats stats;
    ExpectSameMatches(rig.engine->Query(hum, 5, QueryOptions(), &stats),
                      rig.oracle.Query(hum, 5));
    EXPECT_FALSE(stats.partial);
    EXPECT_EQ(stats.shards_failed, 0u);
  }

  // Background maintenance re-ships every fallen replica from its survivor.
  rig.engine->StartBackgroundRepair(1);
  for (int i = 0; i < 2000; ++i) {
    bool all = true;
    for (std::size_t s = 0; s < kShards; ++s) {
      all = all && rig.engine->shard_status(s).serving_replicas == 2u;
    }
    if (all) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rig.engine->StopBackgroundRepair();
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(rig.engine->shard_status(s).serving_replicas, 2u);
  }
  rig.ExpectGroupsDigestIdentical();
  EXPECT_GT(readers.queries(), 0u);
  EXPECT_FALSE(readers.saw_violation());
}

}  // namespace
}  // namespace serve
}  // namespace humdex
