#include <gtest/gtest.h>

#include "transform/feature_scheme.h"
#include "ts/dtw.h"
#include "util/random.h"

namespace humdex {
namespace {

Series RandomWalk(Rng* rng, std::size_t n) {
  Series x(n);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v += rng->Gaussian();
    x[i] = v;
  }
  return x;
}

std::vector<std::shared_ptr<FeatureScheme>> AllSchemes(Rng* rng) {
  std::vector<Series> corpus;
  for (int i = 0; i < 40; ++i) corpus.push_back(RandomWalk(rng, 64));
  return {MakeNewPaaScheme(64, 8), MakeKeoghPaaScheme(64, 8), MakeDftScheme(64, 8),
          MakeDwtScheme(64, 8), MakeSvdScheme(corpus, 8)};
}

TEST(FeatureSchemeTest, NamesAndDims) {
  Rng rng(1);
  auto schemes = AllSchemes(&rng);
  std::vector<std::string> names;
  for (const auto& s : schemes) {
    names.push_back(s->name());
    EXPECT_EQ(s->input_dim(), 64u);
    EXPECT_EQ(s->output_dim(), 8u);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"new_paa", "keogh_paa", "dft", "dwt",
                                             "svd"}));
}

TEST(FeatureSchemeTest, EverySchemeSatisfiesTheorem1) {
  Rng rng(2);
  auto schemes = AllSchemes(&rng);
  for (const auto& scheme : schemes) {
    for (std::size_t k : {0u, 3u, 8u}) {
      for (int trial = 0; trial < 20; ++trial) {
        Series x = RandomWalk(&rng, 64), y = RandomWalk(&rng, 64);
        Series fx = scheme->Features(x);
        Envelope fe = scheme->ReduceEnvelope(BuildEnvelope(y, k));
        double lb = DistanceToEnvelope(fx, fe);
        EXPECT_LE(lb, LdtwDistance(x, y, k) + 1e-9)
            << scheme->name() << " k=" << k;
      }
    }
  }
}

TEST(FeatureSchemeTest, EverySchemeContainerInvariant) {
  Rng rng(3);
  auto schemes = AllSchemes(&rng);
  for (const auto& scheme : schemes) {
    Series y = RandomWalk(&rng, 64);
    Envelope e = BuildEnvelope(y, 4);
    Envelope fe = scheme->ReduceEnvelope(e);
    for (int trial = 0; trial < 50; ++trial) {
      Series z(64);
      for (std::size_t i = 0; i < 64; ++i) {
        z[i] = rng.Uniform(e.lower[i], e.upper[i] + 1e-15);
      }
      EXPECT_TRUE(fe.Contains(scheme->Features(z), 1e-7)) << scheme->name();
    }
  }
}

TEST(FeatureSchemeTest, NewPaaEnvelopeTighterThanKeogh) {
  Rng rng(4);
  auto new_paa = MakeNewPaaScheme(64, 8);
  auto keogh = MakeKeoghPaaScheme(64, 8);
  for (int trial = 0; trial < 30; ++trial) {
    Envelope e = BuildEnvelope(RandomWalk(&rng, 64), 5);
    Envelope ne = new_paa->ReduceEnvelope(e);
    Envelope ke = keogh->ReduceEnvelope(e);
    double new_volume = 0.0, keogh_volume = 0.0;
    for (std::size_t i = 0; i < 8; ++i) {
      new_volume += ne.upper[i] - ne.lower[i];
      keogh_volume += ke.upper[i] - ke.lower[i];
    }
    EXPECT_LE(new_volume, keogh_volume + 1e-9);
  }
}

}  // namespace
}  // namespace humdex
