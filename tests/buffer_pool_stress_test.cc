// Concurrency stress for the sharded LRU buffer pool and the R*-tree read
// path that drives it: many readers hammer overlapping page sets with mixed
// Access / Pin traffic. Meant to run under -DHUMDEX_SANITIZE=thread, where
// any unlocked mutation of the LRU lists or counters is a hard failure; the
// assertions here check the logical invariants (pins balance, counters
// consistent, bookkeeping intact) that must hold on any hardware.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "index/buffer_pool.h"
#include "index/rstar_tree.h"
#include "util/random.h"

namespace humdex {
namespace {

TEST(BufferPoolStressTest, ConcurrentMixedAccessAndPinTraffic) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 20000;
  constexpr std::uint64_t kPageSpace = 256;  // overlapping working sets
  LruBufferPool pool(64, /*shards=*/4);

  std::atomic<std::uint64_t> observed_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &observed_hits, t] {
      Rng rng(1000 + t);
      std::uint64_t hits = 0;
      for (std::size_t op = 0; op < kOpsPerThread; ++op) {
        std::uint64_t page = rng.NextBounded(kPageSpace);
        if (op % 3 == 0) {
          // Pinned read: the page must stay resident while the guard lives.
          LruBufferPool::PageGuard guard = pool.Pin(page);
          if (guard.hit()) ++hits;
          // Touch a second page while the first is pinned (nested reads, as
          // in a tree descent).
          pool.Access(rng.NextBounded(kPageSpace));
        } else {
          if (pool.Access(page)) ++hits;
        }
      }
      observed_hits.fetch_add(hits);
    });
  }
  for (std::thread& t : threads) t.join();

  // Every op was either a hit or a miss, exactly once. A third of the ops
  // pinned and touched an extra page.
  const std::uint64_t total_ops =
      kThreads * (kOpsPerThread + (kOpsPerThread + 2) / 3);
  EXPECT_EQ(pool.hits() + pool.misses(), total_ops);
  EXPECT_GE(pool.hits(), observed_hits.load());
  EXPECT_EQ(pool.pinned(), 0u) << "unbalanced pins after all guards died";
  EXPECT_LE(pool.resident(), pool.capacity());
  pool.CheckInvariants();
}

TEST(BufferPoolStressTest, PinnedPagesSurviveEvictionPressure) {
  // A capacity-2 pool with one page pinned: the pinned page must survive any
  // amount of conflicting traffic, the other slot thrashes.
  LruBufferPool pool(2);
  LruBufferPool::PageGuard guard = pool.Pin(0);
  for (std::uint64_t p = 1; p <= 100; ++p) pool.Access(p);
  EXPECT_EQ(pool.pinned(), 1u);
  EXPECT_TRUE(pool.Access(0)) << "pinned page was evicted";
  guard.Release();
  EXPECT_EQ(pool.pinned(), 0u);
  // Unpinned now: enough conflicting traffic eventually evicts page 0.
  for (std::uint64_t p = 1; p <= 100; ++p) pool.Access(p);
  EXPECT_FALSE(pool.Access(0));
}

TEST(BufferPoolStressTest, NestedPinsOnSamePage) {
  LruBufferPool pool(4);
  {
    LruBufferPool::PageGuard a = pool.Pin(7);
    LruBufferPool::PageGuard b = pool.Pin(7);
    EXPECT_EQ(pool.pinned(), 2u);
  }
  EXPECT_EQ(pool.pinned(), 0u);
  pool.CheckInvariants();
}

TEST(BufferPoolStressTest, ConcurrentTreeReadersShareOnePool) {
  // The real integration: 8 threads running range queries through one
  // R*-tree with an attached pool. Page accounting must be exact — every
  // node visit is one pool access — and all query pins must unwind.
  Rng rng(13);
  RStarTree tree(4);
  for (std::int64_t id = 0; id < 4000; ++id) {
    Series p(4);
    for (double& v : p) v = rng.Uniform(-10, 10);
    tree.Insert(p, id);
  }
  LruBufferPool pool(256, /*shards=*/4);
  tree.AttachBufferPool(&pool);

  constexpr std::size_t kThreads = 8;
  std::atomic<std::uint64_t> total_pages{0};
  std::atomic<std::uint64_t> total_results{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng qrng(100 + t);
      std::uint64_t pages = 0, results = 0;
      for (int q = 0; q < 50; ++q) {
        Series c(4);
        for (double& v : c) v = qrng.Uniform(-10, 10);
        IndexStats stats;
        results += tree.RangeQuery(Rect::FromPoint(c), 3.0, &stats).size();
        pages += stats.page_accesses;
      }
      total_pages.fetch_add(pages);
      total_results.fetch_add(results);
    });
  }
  for (std::thread& t : threads) t.join();
  tree.AttachBufferPool(nullptr);

  EXPECT_EQ(pool.hits() + pool.misses(), total_pages.load());
  EXPECT_EQ(pool.pinned(), 0u);
  EXPECT_GT(total_results.load(), 0u);
  pool.CheckInvariants();

  // The same workload re-run serially returns identical result counts:
  // concurrent readers did not corrupt the tree.
  std::uint64_t serial_results = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    Rng qrng(100 + t);
    for (int q = 0; q < 50; ++q) {
      Series c(4);
      for (double& v : c) v = qrng.Uniform(-10, 10);
      serial_results += tree.RangeQuery(Rect::FromPoint(c), 3.0).size();
    }
  }
  EXPECT_EQ(serial_results, total_results.load());
}

}  // namespace
}  // namespace humdex
