#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace humdex {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&ran] { ++ran; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsTaskValue) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
  auto g = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(g.get(), "ok");
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    // One long task at the head keeps the rest queued when ~ThreadPool runs.
    pool.Submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(50)); });
    for (int i = 0; i < 20; ++i) pool.Submit([&ran] { ++ran; });
  }
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(
      {
        try {
          f.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task failed");
          throw;
        }
      },
      std::runtime_error);
  // The worker that ran the throwing task is still alive.
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> counts(1000);
  ParallelFor(pool, counts.size(), [&](std::size_t i) { ++counts[i]; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestFailingIndex) {
  ThreadPool pool(4);
  EXPECT_THROW(
      {
        try {
          ParallelFor(pool, 64, [](std::size_t i) {
            if (i == 7 || i == 31) {
              throw std::runtime_error("fail " + std::to_string(i));
            }
          });
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "fail 7");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

// The determinism contract behind the batch query APIs: output slots are
// keyed by submission index, so the collected results are identical no matter
// how many workers race over the tasks or in what order they finish.
TEST(ThreadPoolTest, OutputOrderingIndependentOfWorkerCount) {
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(200, 0);
    ParallelFor(pool, out.size(), [&](std::size_t i) {
      // Skewed busy work so completion order differs from submission order;
      // the result is still a pure function of i.
      std::uint64_t acc = i;
      std::uint64_t spins = (i % 7) * 1000 + 1;
      for (std::uint64_t s = 0; s < spins; ++s) {
        acc = acc * 2862933555777941757ULL + 3037000493ULL;
      }
      out[i] = acc;
    });
    return out;
  };
  std::vector<std::uint64_t> serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

}  // namespace
}  // namespace humdex
