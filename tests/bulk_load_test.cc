#include <gtest/gtest.h>

#include <algorithm>

#include "index/linear_scan.h"
#include "index/rstar_tree.h"
#include "util/random.h"

namespace humdex {
namespace {

std::pair<std::vector<Series>, std::vector<std::int64_t>> RandomPoints(
    Rng* rng, std::size_t count, std::size_t dims) {
  std::vector<Series> pts;
  std::vector<std::int64_t> ids;
  for (std::size_t i = 0; i < count; ++i) {
    Series p(dims);
    for (double& v : p) v = rng->Uniform(-10, 10);
    pts.push_back(std::move(p));
    ids.push_back(static_cast<std::int64_t>(i));
  }
  return {pts, ids};
}

TEST(BulkLoadTest, EmptyAndTiny) {
  auto empty = RStarTree::BulkLoad(3, {}, {});
  EXPECT_EQ(empty->size(), 0u);
  EXPECT_TRUE(empty->KnnQuery({0, 0, 0}, 1).empty());

  auto one = RStarTree::BulkLoad(2, {{1.0, 2.0}}, {7});
  EXPECT_EQ(one->size(), 1u);
  auto nn = one->KnnQuery({0, 0}, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 7);
  one->CheckInvariants();
}

class BulkLoadAgreementTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BulkLoadAgreementTest, QueriesMatchLinearScan) {
  const std::size_t count = GetParam();
  Rng rng(100 + count);
  auto [pts, ids] = RandomPoints(&rng, count, 6);
  auto tree = RStarTree::BulkLoad(6, pts, ids);
  tree->CheckInvariants();
  EXPECT_EQ(tree->size(), count);

  LinearScanIndex scan(6);
  for (std::size_t i = 0; i < pts.size(); ++i) scan.Insert(pts[i], ids[i]);

  for (int q = 0; q < 20; ++q) {
    Series center(6);
    for (double& v : center) v = rng.Uniform(-10, 10);
    double radius = rng.Uniform(0.5, 6.0);
    auto t = tree->RangeQuery(Rect::FromPoint(center), radius);
    auto s = scan.RangeQuery(Rect::FromPoint(center), radius);
    std::sort(t.begin(), t.end());
    std::sort(s.begin(), s.end());
    EXPECT_EQ(t, s) << "count=" << count;

    auto tn = tree->KnnQuery(center, 5);
    auto sn = scan.KnnQuery(center, 5);
    ASSERT_EQ(tn.size(), sn.size());
    for (std::size_t i = 0; i < tn.size(); ++i) {
      EXPECT_NEAR(tn[i].distance, sn[i].distance, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, BulkLoadAgreementTest,
                         ::testing::Values(5, 64, 65, 1000, 10000));

TEST(BulkLoadTest, FewerNodesThanIncrementalInsert) {
  Rng rng(7);
  auto [pts, ids] = RandomPoints(&rng, 20000, 8);
  auto packed = RStarTree::BulkLoad(8, pts, ids);
  RStarTree incremental(8);
  for (std::size_t i = 0; i < pts.size(); ++i) incremental.Insert(pts[i], ids[i]);
  EXPECT_LT(packed->NodeCount(), incremental.NodeCount());
  // Near-full packing: node count close to the ceil(N/M) floor.
  std::size_t min_leaves = (pts.size() + 63) / 64;
  EXPECT_LE(packed->NodeCount(), min_leaves + min_leaves / 2 + 8);
}

TEST(BulkLoadTest, InsertAfterBulkLoadStillCorrect) {
  Rng rng(9);
  auto [pts, ids] = RandomPoints(&rng, 2000, 4);
  auto tree = RStarTree::BulkLoad(4, pts, ids);
  LinearScanIndex scan(4);
  for (std::size_t i = 0; i < pts.size(); ++i) scan.Insert(pts[i], ids[i]);
  // Grow both by another 2000 incremental points.
  for (std::int64_t id = 2000; id < 4000; ++id) {
    Series p(4);
    for (double& v : p) v = rng.Uniform(-10, 10);
    tree->Insert(p, id);
    scan.Insert(p, id);
  }
  tree->CheckInvariants();
  for (int q = 0; q < 15; ++q) {
    Series center(4);
    for (double& v : center) v = rng.Uniform(-10, 10);
    auto t = tree->RangeQuery(Rect::FromPoint(center), 3.0);
    auto s = scan.RangeQuery(Rect::FromPoint(center), 3.0);
    std::sort(t.begin(), t.end());
    std::sort(s.begin(), s.end());
    EXPECT_EQ(t, s);
  }
}

TEST(BulkLoadTest, PackedTreeTouchesFewerPages) {
  Rng rng(11);
  auto [pts, ids] = RandomPoints(&rng, 30000, 8);
  auto packed = RStarTree::BulkLoad(8, pts, ids);
  RStarTree incremental(8);
  for (std::size_t i = 0; i < pts.size(); ++i) incremental.Insert(pts[i], ids[i]);

  std::size_t packed_pages = 0, incr_pages = 0;
  for (int q = 0; q < 20; ++q) {
    Series center(8);
    for (double& v : center) v = rng.Uniform(-10, 10);
    IndexStats ps, is;
    packed->RangeQuery(Rect::FromPoint(center), 4.0, &ps);
    incremental.RangeQuery(Rect::FromPoint(center), 4.0, &is);
    packed_pages += ps.page_accesses;
    incr_pages += is.page_accesses;
  }
  EXPECT_LT(packed_pages, incr_pages);
}

}  // namespace
}  // namespace humdex
