#include <gtest/gtest.h>

#include "music/melody.h"
#include "music/segmenter.h"

namespace humdex {
namespace {

TEST(MelodyTest, TotalBeats) {
  Melody m;
  m.notes = {{60, 1.0}, {62, 0.5}, {64, 2.0}};
  EXPECT_DOUBLE_EQ(m.TotalBeats(), 3.5);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_FALSE(m.empty());
  EXPECT_TRUE(Melody().empty());
}

TEST(MelodyTest, Transposed) {
  Melody m;
  m.notes = {{60, 1.0}, {64, 1.0}};
  Melody t = m.Transposed(-5.0);
  EXPECT_DOUBLE_EQ(t.notes[0].pitch, 55.0);
  EXPECT_DOUBLE_EQ(t.notes[1].pitch, 59.0);
  EXPECT_DOUBLE_EQ(t.notes[0].duration, 1.0);
}

TEST(MelodyToSeriesTest, RepeatsNoteForDuration) {
  Melody m;
  m.notes = {{60, 1.0}, {62, 2.0}};
  Series s = MelodyToSeries(m, 2.0);
  Series expect{60, 60, 62, 62, 62, 62};
  EXPECT_EQ(s, expect);
}

TEST(MelodyToSeriesTest, ShortNotesGetAtLeastOneSample) {
  Melody m;
  m.notes = {{60, 0.01}, {62, 0.01}};
  Series s = MelodyToSeries(m, 1.0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 60);
  EXPECT_DOUBLE_EQ(s[1], 62);
}

TEST(MelodyToSeriesTest, FractionalDurationsRound) {
  Melody m;
  m.notes = {{60, 0.75}};
  Series s = MelodyToSeries(m, 4.0);  // 3 samples
  EXPECT_EQ(s.size(), 3u);
}

TEST(SegmenterTest, SplitsAtLongNotes) {
  Melody song;
  SegmenterOptions opt;
  opt.min_notes = 3;
  opt.max_notes = 10;
  opt.boundary_duration = 2.0;
  // 4 short notes, a long note, 4 short notes, a long note.
  for (int phrase = 0; phrase < 2; ++phrase) {
    for (int i = 0; i < 4; ++i) song.notes.push_back({60.0 + i, 1.0});
    song.notes.push_back({70.0, 3.0});
  }
  auto phrases = SegmentMelody(song, opt);
  ASSERT_EQ(phrases.size(), 2u);
  EXPECT_EQ(phrases[0].size(), 5u);
  EXPECT_EQ(phrases[1].size(), 5u);
}

TEST(SegmenterTest, EnforcesMaxNotes) {
  Melody song;
  for (int i = 0; i < 100; ++i) song.notes.push_back({60.0, 0.5});
  SegmenterOptions opt;
  opt.min_notes = 5;
  opt.max_notes = 10;
  auto phrases = SegmentMelody(song, opt);
  EXPECT_EQ(phrases.size(), 10u);
  for (const Melody& p : phrases) EXPECT_LE(p.size(), 10u);
}

TEST(SegmenterTest, NoNoteLost) {
  Melody song;
  song.name = "s";
  for (int i = 0; i < 57; ++i) {
    song.notes.push_back({60.0 + (i % 12), (i % 7 == 0) ? 2.5 : 1.0});
  }
  auto phrases = SegmentMelody(song);
  std::size_t total = 0;
  for (const Melody& p : phrases) total += p.size();
  EXPECT_EQ(total, 57u);
}

TEST(SegmenterTest, ShortTailMergedIntoPredecessor) {
  Melody song;
  SegmenterOptions opt;
  opt.min_notes = 4;
  opt.max_notes = 6;
  for (int i = 0; i < 8; ++i) song.notes.push_back({60.0, 1.0});
  // Splits at 6, leaving a 2-note tail < min_notes -> merged.
  auto phrases = SegmentMelody(song, opt);
  ASSERT_EQ(phrases.size(), 1u);
  EXPECT_EQ(phrases[0].size(), 8u);
}

TEST(SegmenterTest, PhraseNamesDerivedFromSong) {
  Melody song;
  song.name = "hey_jude";
  for (int i = 0; i < 40; ++i) song.notes.push_back({60.0, 1.0});
  auto phrases = SegmentMelody(song);
  ASSERT_FALSE(phrases.empty());
  EXPECT_EQ(phrases[0].name, "hey_jude/phrase_0");
}

}  // namespace
}  // namespace humdex
