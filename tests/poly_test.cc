#include <gtest/gtest.h>

#include <cmath>

#include "transform/dft.h"
#include "transform/poly.h"
#include "ts/dtw.h"
#include "util/random.h"

namespace humdex {
namespace {

Series RandomWalk(Rng* rng, std::size_t n) {
  Series x(n);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v += rng->Gaussian();
    x[i] = v;
  }
  return x;
}

TEST(PolyTransformTest, RowsOrthonormal) {
  for (std::size_t dim : {2u, 4u, 8u, 16u}) {
    PolyTransform t(64, dim);
    const Matrix& a = t.coefficients();
    for (std::size_t p = 0; p < dim; ++p) {
      for (std::size_t q = 0; q < dim; ++q) {
        double dot = 0.0;
        for (std::size_t i = 0; i < 64; ++i) dot += a(p, i) * a(q, i);
        EXPECT_NEAR(dot, p == q ? 1.0 : 0.0, 1e-9) << "dim=" << dim;
      }
    }
  }
}

TEST(PolyTransformTest, DegreeZeroIsScaledMean) {
  PolyTransform t(16, 1);
  Series x(16, 3.0);
  Series f = t.Apply(x);
  // Constant row = 1/sqrt(16); feature = 16 * 3 / 4 = 12.
  EXPECT_NEAR(f[0], 12.0, 1e-9);
}

TEST(PolyTransformTest, CapturesLinearTrendExactly) {
  // A straight line lies in the degree-<=1 span: 2 features preserve its
  // full energy.
  PolyTransform t(32, 2);
  Series x(32);
  for (std::size_t i = 0; i < 32; ++i) x[i] = 2.0 * static_cast<double>(i) - 7.0;
  Series f = t.Apply(x);
  double feat_energy = f[0] * f[0] + f[1] * f[1];
  double raw_energy = 0.0;
  for (double v : x) raw_energy += v * v;
  EXPECT_NEAR(feat_energy, raw_energy, 1e-6);
}

TEST(PolyTransformTest, LowerBoundsEuclidean) {
  Rng rng(3);
  PolyTransform t(64, 8);
  for (int trial = 0; trial < 50; ++trial) {
    Series x = RandomWalk(&rng, 64), y = RandomWalk(&rng, 64);
    EXPECT_LE(EuclideanDistance(t.Apply(x), t.Apply(y)),
              EuclideanDistance(x, y) + 1e-9);
  }
}

TEST(PolyTransformTest, SchemeSatisfiesTheorem1) {
  Rng rng(5);
  auto scheme = MakePolyScheme(64, 8);
  EXPECT_EQ(scheme->name(), "poly");
  for (std::size_t k : {0u, 4u, 9u}) {
    for (int trial = 0; trial < 25; ++trial) {
      Series x = RandomWalk(&rng, 64), y = RandomWalk(&rng, 64);
      Envelope fe = scheme->ReduceEnvelope(BuildEnvelope(y, k));
      double lb = DistanceToEnvelope(scheme->Features(x), fe);
      EXPECT_LE(lb, LdtwDistance(x, y, k) + 1e-9) << "k=" << k;
    }
  }
}

TEST(PolyTransformTest, ContainerInvariant) {
  Rng rng(7);
  PolyTransform t(64, 6);
  Series y = RandomWalk(&rng, 64);
  Envelope e = BuildEnvelope(y, 5);
  Envelope fe = t.ApplyToEnvelope(e);
  for (int trial = 0; trial < 40; ++trial) {
    Series z(64);
    for (std::size_t i = 0; i < 64; ++i) {
      z[i] = rng.Uniform(e.lower[i], e.upper[i] + 1e-15);
    }
    EXPECT_TRUE(fe.Contains(t.Apply(z), 1e-7));
  }
}

TEST(PolyTransformTest, BeatsDftOnSmoothTrendData) {
  // Smooth trending series concentrate energy in low-degree polynomials.
  Rng rng(9);
  PolyTransform poly(64, 4);
  DftTransform dft(64, 4);
  double poly_sum = 0.0, dft_sum = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    Series x(64), y(64);
    double ax = rng.Gaussian(), bx = rng.Gaussian();
    double ay = rng.Gaussian(), by = rng.Gaussian();
    for (std::size_t i = 0; i < 64; ++i) {
      double t = static_cast<double>(i) / 63.0;
      x[i] = ax * t + bx * t * t + rng.Gaussian(0.0, 0.05);
      y[i] = ay * t + by * t * t + rng.Gaussian(0.0, 0.05);
    }
    poly_sum += EuclideanDistance(poly.Apply(x), poly.Apply(y));
    dft_sum += EuclideanDistance(dft.Apply(x), dft.Apply(y));
  }
  EXPECT_GT(poly_sum, dft_sum);
}

}  // namespace
}  // namespace humdex
