#include <gtest/gtest.h>

#include "audio/synth.h"
#include "music/hummer.h"
#include "music/pitch_tracker.h"
#include "music/song_generator.h"
#include "qbh/contour_system.h"
#include "qbh/qbh_system.h"

namespace humdex {
namespace {

std::vector<Melody> SmallCorpus(std::size_t count, std::uint64_t seed = 1) {
  SongGenerator gen(seed);
  return gen.GeneratePhrases(count);
}

TEST(QbhSystemTest, PerfectHumFindsItsMelodyAtRankOne) {
  auto corpus = SmallCorpus(100);
  QbhSystem system;
  for (Melody& m : corpus) system.AddMelody(m);
  system.Build();

  Hummer hummer(HummerProfile::Perfect(), 3);
  for (std::int64_t target : {0, 17, 42, 99}) {
    Series hum = hummer.Hum(corpus[static_cast<std::size_t>(target)]);
    auto matches = system.Query(hum, 3);
    ASSERT_FALSE(matches.empty());
    EXPECT_EQ(matches[0].id, target);
    EXPECT_EQ(system.RankOf(hum, target), 1u);
  }
}

TEST(QbhSystemTest, QueryReturnsAscendingDistances) {
  auto corpus = SmallCorpus(80);
  QbhSystem system;
  for (Melody& m : corpus) system.AddMelody(m);
  system.Build();
  Hummer hummer(HummerProfile::Good(), 5);
  auto matches = system.Query(hummer.Hum(corpus[10]), 10);
  ASSERT_EQ(matches.size(), 10u);
  for (std::size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i].distance, matches[i - 1].distance);
  }
}

TEST(QbhSystemTest, GoodSingerMostlyTopRank) {
  auto corpus = SmallCorpus(200);
  QbhSystem system;
  for (Melody& m : corpus) system.AddMelody(m);
  system.Build();

  int top1 = 0;
  const int queries = 20;
  for (int q = 0; q < queries; ++q) {
    std::int64_t target = q * 10;
    Hummer hummer(HummerProfile::Good(), 1000 + static_cast<std::uint64_t>(q));
    Series hum = hummer.Hum(corpus[static_cast<std::size_t>(target)]);
    if (system.RankOf(hum, target) == 1) ++top1;
  }
  // Table 2 shape: the vast majority of good-singer queries hit rank 1.
  EXPECT_GE(top1, queries * 6 / 10);
}

TEST(QbhSystemTest, MatchCarriesMelodyName) {
  auto corpus = SmallCorpus(30);
  QbhSystem system;
  for (Melody& m : corpus) system.AddMelody(m);
  system.Build();
  Hummer hummer(HummerProfile::Perfect(), 7);
  auto matches = system.Query(hummer.Hum(corpus[5]), 1);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].name, "phrase_5");
}

TEST(QbhSystemTest, SilentFramesIgnored) {
  auto corpus = SmallCorpus(30);
  QbhSystem system;
  for (Melody& m : corpus) system.AddMelody(m);
  system.Build();
  Hummer hummer(HummerProfile::Perfect(), 9);
  Series hum = hummer.Hum(corpus[3]);
  // Interleave silence (breaths) into the hum.
  Series with_silence;
  for (std::size_t i = 0; i < hum.size(); ++i) {
    with_silence.push_back(hum[i]);
    if (i % 50 == 0) with_silence.push_back(SilentFrame());
  }
  auto matches = system.Query(with_silence, 1);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].id, 3);
}

TEST(QbhSystemTest, AllSchemesGiveSameRanking) {
  auto corpus = SmallCorpus(60);
  Hummer hummer(HummerProfile::Good(), 11);
  Series hum = hummer.Hum(corpus[20]);

  std::vector<std::vector<std::int64_t>> rankings;
  for (SchemeKind scheme : {SchemeKind::kNewPaa, SchemeKind::kKeoghPaa,
                            SchemeKind::kDft, SchemeKind::kDwt, SchemeKind::kSvd}) {
    QbhOptions opt;
    opt.scheme = scheme;
    QbhSystem system(opt);
    for (const Melody& m : corpus) system.AddMelody(m);
    system.Build();
    auto matches = system.Query(hum, 5);
    std::vector<std::int64_t> ids;
    for (const auto& match : matches) ids.push_back(match.id);
    rankings.push_back(ids);
  }
  for (std::size_t i = 1; i < rankings.size(); ++i) {
    EXPECT_EQ(rankings[i], rankings[0]) << "scheme " << i;
  }
}

TEST(QbhSystemTest, WiderWarpingWidthNeverIncreasesDistance) {
  auto corpus = SmallCorpus(40);
  Hummer hummer(HummerProfile::Poor(), 13);
  Series hum = hummer.Hum(corpus[7]);
  double prev = kInfiniteDistance;
  for (double width : {0.05, 0.1, 0.2, 0.4}) {
    QbhOptions opt;
    opt.warping_width = width;
    QbhSystem system(opt);
    for (const Melody& m : corpus) system.AddMelody(m);
    system.Build();
    auto matches = system.Query(hum, 1);
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_LE(matches[0].distance, prev + 1e-9);
    prev = matches[0].distance;
  }
}

TEST(ContourSystemTest, ExactContourQueryRanksFirst) {
  // A repeat-free melody segments cleanly, so a perfect hum recovers its
  // contour exactly and must rank first. (Melodies with repeated notes are
  // precisely where segmentation fails — see NoisyHumProducesImperfectContour.)
  auto corpus = SmallCorpus(100, 21);
  Melody unique;
  unique.name = "unique";
  unique.notes = {{60, 1}, {67, 1}, {59, 1}, {71, 1}, {58, 1}, {65, 1},
                  {61, 1}, {72, 1}, {57, 1}, {64, 1}, {69, 1}, {56, 1},
                  {68, 1}, {62, 1}, {73, 1}, {55, 1}};
  ContourSystem system;
  for (const Melody& m : corpus) system.AddMelody(m);
  std::int64_t target = system.AddMelody(unique);
  Hummer hummer(HummerProfile::Perfect(), 3);
  Series hum = hummer.Hum(unique);
  auto matches = system.Query(hum, 5);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].id, target);
  EXPECT_EQ(matches[0].edit_distance, 0u);
}

TEST(ContourSystemTest, RankOfIsPessimisticOnTies) {
  Melody a, b;
  a.notes = {{60, 1}, {62, 1}, {64, 1}};   // contour "uu"
  b.notes = {{50, 1}, {51.5, 1}, {53, 1}};  // contour "uu" as well
  ContourSystem system;
  system.AddMelody(a);
  system.AddMelody(b);
  Hummer hummer(HummerProfile::Perfect(), 5);
  Series hum = hummer.Hum(a);
  // Both melodies tie at edit distance 0; rank counts the tie against us.
  EXPECT_EQ(system.RankOf(hum, 0), 2u);
}

TEST(ContourSystemTest, QGramCandidatesContainTrueMatch) {
  auto corpus = SmallCorpus(150, 23);
  ContourSystem system;
  for (const Melody& m : corpus) system.AddMelody(m);
  Hummer hummer(HummerProfile::Good(), 7);
  for (std::int64_t target : {5, 50, 100}) {
    Series hum = hummer.Hum(corpus[static_cast<std::size_t>(target)]);
    std::string qc = system.HumToContour(hum);
    std::size_t true_ed = EditDistance(
        qc, ContourOf(corpus[static_cast<std::size_t>(target)]));
    auto candidates = system.QGramCandidates(qc, true_ed);
    bool found = false;
    for (std::int64_t id : candidates) found |= (id == target);
    EXPECT_TRUE(found) << "target " << target;
  }
}

TEST(QbhSystemTest, QueryAudioFindsHummedMelody) {
  auto corpus = SmallCorpus(80, 31);
  QbhSystem system;
  for (Melody& m : corpus) system.AddMelody(m);
  system.Build();

  Hummer hummer(HummerProfile::Good(), 17);
  Series pitch = hummer.Hum(corpus[44]);
  SynthOptions sopt;
  Series pcm = SynthesizeHum(pitch, sopt);
  auto matches = system.QueryAudio(pcm, sopt.sample_rate, 3);
  ASSERT_FALSE(matches.empty());
  bool found = false;
  for (const auto& m : matches) found |= (m.id == 44);
  EXPECT_TRUE(found);
}

TEST(QbhSystemTest, ChecksMisuse) {
  QbhSystem system;
  Melody m;
  m.notes = {{60, 1}, {62, 1}};
  system.AddMelody(m);
  EXPECT_FALSE(system.built());
  system.Build();
  EXPECT_TRUE(system.built());
  EXPECT_EQ(system.size(), 1u);
  EXPECT_EQ(system.melody(0)->notes.size(), 2u);
}

}  // namespace
}  // namespace humdex
