#include <gtest/gtest.h>

#include "index/buffer_pool.h"
#include "index/rstar_tree.h"
#include "util/random.h"

namespace humdex {
namespace {

TEST(LruBufferPoolTest, ColdMissesThenHits) {
  LruBufferPool pool(4);
  EXPECT_FALSE(pool.Access(1));
  EXPECT_FALSE(pool.Access(2));
  EXPECT_TRUE(pool.Access(1));
  EXPECT_TRUE(pool.Access(2));
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.misses(), 2u);
  EXPECT_DOUBLE_EQ(pool.MissRate(), 0.5);
}

TEST(LruBufferPoolTest, EvictsLeastRecentlyUsed) {
  LruBufferPool pool(2);
  pool.Access(1);  // miss
  pool.Access(2);  // miss
  pool.Access(1);  // hit; order: 1, 2
  pool.Access(3);  // miss; evicts 2
  EXPECT_TRUE(pool.Access(1));
  EXPECT_FALSE(pool.Access(2));  // was evicted
  EXPECT_EQ(pool.resident(), 2u);
}

TEST(LruBufferPoolTest, CapacityOneThrashes) {
  LruBufferPool pool(1);
  for (int round = 0; round < 10; ++round) {
    EXPECT_FALSE(pool.Access(1));
    EXPECT_FALSE(pool.Access(2));
  }
  EXPECT_EQ(pool.hits(), 0u);
}

TEST(LruBufferPoolTest, ClearAndResetStats) {
  LruBufferPool pool(8);
  pool.Access(1);
  pool.Access(1);
  pool.Clear();
  EXPECT_EQ(pool.resident(), 0u);
  EXPECT_EQ(pool.hits(), 1u);  // stats survive Clear
  pool.ResetStats();
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 0u);
  EXPECT_DOUBLE_EQ(pool.MissRate(), 0.0);
}

TEST(LruBufferPoolTest, WorkingSetWithinCapacityHasNoSteadyStateMisses) {
  LruBufferPool pool(16);
  Rng rng(3);
  for (int i = 0; i < 16; ++i) pool.Access(static_cast<std::uint64_t>(i));
  pool.ResetStats();
  for (int op = 0; op < 1000; ++op) {
    pool.Access(rng.NextBounded(16));
  }
  EXPECT_EQ(pool.misses(), 0u);
}

TEST(RStarBufferPoolTest, UpperLevelsStayResident) {
  // With a pool holding a fraction of the tree, repeated queries hit the
  // root path: miss rate well below 1, and a larger pool misses less.
  Rng rng(5);
  RStarTree tree(8);
  for (std::int64_t id = 0; id < 20000; ++id) {
    Series p(8);
    for (double& v : p) v = rng.Uniform(-10, 10);
    tree.Insert(p, id);
  }
  auto run = [&](std::size_t pool_pages) {
    LruBufferPool pool(pool_pages);
    tree.AttachBufferPool(&pool);
    Rng qrng(9);
    for (int q = 0; q < 200; ++q) {
      Series c(8);
      for (double& v : c) v = qrng.Uniform(-10, 10);
      tree.RangeQuery(Rect::FromPoint(c), 3.0);
    }
    tree.AttachBufferPool(nullptr);
    return pool.MissRate();
  };
  double small = run(tree.NodeCount() / 4);
  double large = run(tree.NodeCount());
  EXPECT_LT(small, 1.0);
  EXPECT_LT(large, small);
  // A pool the size of the tree only cold-misses.
  EXPECT_LT(large, 0.2);
}

TEST(RStarBufferPoolTest, AccessCountMatchesPageStats) {
  Rng rng(7);
  RStarTree tree(4);
  for (std::int64_t id = 0; id < 2000; ++id) {
    Series p(4);
    for (double& v : p) v = rng.Uniform(-10, 10);
    tree.Insert(p, id);
  }
  LruBufferPool pool(1000000);  // everything resident
  tree.AttachBufferPool(&pool);
  IndexStats stats;
  tree.RangeQuery(Rect::FromPoint(Series(4, 0.0)), 5.0, &stats);
  tree.AttachBufferPool(nullptr);
  EXPECT_EQ(pool.hits() + pool.misses(), stats.page_accesses);
}

}  // namespace
}  // namespace humdex
