// Serving controls: deadlines, cancellation, and overload shedding. The
// contracts under test: an already-expired deadline costs zero exact-DTW
// work; a generous deadline changes nothing (bit-identical answers); every
// early stop is visible as QueryStats::truncated plus a counter; and shed
// batch queries never reach the engine at all.
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "gemini/query_engine.h"
#include "music/hummer.h"
#include "music/song_generator.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "qbh/qbh_system.h"
#include "qbh/storage.h"
#include "ts/normal_form.h"
#include "util/random.h"
#include "util/retry.h"
#include "util/thread_pool.h"

namespace humdex {
namespace {

constexpr std::size_t kLen = 64;

std::vector<Series> RandomWalkNormalForms(std::size_t count,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Series> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Series walk(kLen);
    double v = 0.0;
    for (double& x : walk) {
      v += rng.Uniform(-1.0, 1.0);
      x = v;
    }
    out.push_back(NormalForm(walk, kLen));
  }
  return out;
}

DtwQueryEngine MakeEngine(std::size_t corpus_size = 200) {
  QueryEngineOptions opts;
  opts.normal_len = kLen;
  DtwQueryEngine engine(MakeNewPaaScheme(kLen, 8), opts);
  engine.AddAll(RandomWalkNormalForms(corpus_size, 11));
  return engine;
}

Series MakeQuery() {
  Series q = RandomWalkNormalForms(1, 99)[0];
  return NormalForm(q, kLen);
}

QueryOptions ExpiredOptions() {
  QueryOptions qopts;
  qopts.deadline = Deadline::Expired();
  return qopts;
}

QueryOptions GenerousOptions() {
  QueryOptions qopts;
  qopts.deadline = Deadline::FromNowMillis(600000);  // ten minutes
  return qopts;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& a,
                         const std::vector<Neighbor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].distance, b[i].distance);  // bit-identical, not just near
  }
}

TEST(DeadlineTest, ExpiredDeadlineReturnsImmediatelyFromRangeQuery) {
  DtwQueryEngine engine = MakeEngine();
  obs::Counter& expired =
      obs::MetricsRegistry::Default().GetCounter("deadline.expired");
  std::uint64_t before = expired.value();

  QueryStats stats;
  std::vector<Neighbor> r =
      engine.RangeQuery(MakeQuery(), 10.0, ExpiredOptions(), &stats);
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.exact_dtw_calls, 0u);
  EXPECT_EQ(stats.index_candidates, 0u);
  EXPECT_EQ(expired.value(), before + 1);
}

TEST(DeadlineTest, ExpiredDeadlineReturnsImmediatelyFromKnnQuery) {
  DtwQueryEngine engine = MakeEngine();
  QueryStats stats;
  std::vector<Neighbor> r =
      engine.KnnQuery(MakeQuery(), 5, ExpiredOptions(), &stats);
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.exact_dtw_calls, 0u);
}

TEST(DeadlineTest, ExpiredDeadlineReturnsImmediatelyFromKnnQueryOptimal) {
  DtwQueryEngine engine = MakeEngine();
  QueryStats stats;
  std::vector<Neighbor> r =
      engine.KnnQueryOptimal(MakeQuery(), 5, ExpiredOptions(), &stats);
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.exact_dtw_calls, 0u);
}

TEST(DeadlineTest, GenerousDeadlineIsBitIdenticalToNoDeadline) {
  DtwQueryEngine engine = MakeEngine();
  Series q = MakeQuery();

  QueryStats plain_stats, guarded_stats;
  std::vector<Neighbor> plain = engine.KnnQuery(q, 7, &plain_stats);
  std::vector<Neighbor> guarded =
      engine.KnnQuery(q, 7, GenerousOptions(), &guarded_stats);
  ExpectSameNeighbors(plain, guarded);
  EXPECT_FALSE(guarded_stats.truncated);
  EXPECT_EQ(plain_stats.exact_dtw_calls, guarded_stats.exact_dtw_calls);

  double epsilon = plain.back().distance;
  ExpectSameNeighbors(engine.RangeQuery(q, epsilon),
                      engine.RangeQuery(q, epsilon, GenerousOptions()));
  ExpectSameNeighbors(engine.KnnQueryOptimal(q, 7),
                      engine.KnnQueryOptimal(q, 7, GenerousOptions()));
}

TEST(DeadlineTest, DefaultQueryOptionsAreInert) {
  QueryOptions qopts;
  EXPECT_FALSE(qopts.active());
  EXPECT_FALSE(qopts.ShouldStop());

  DtwQueryEngine engine = MakeEngine();
  Series q = MakeQuery();
  QueryStats stats;
  ExpectSameNeighbors(engine.KnnQuery(q, 5),
                      engine.KnnQuery(q, 5, qopts, &stats));
  EXPECT_FALSE(stats.truncated);
}

TEST(CancelTest, PreCancelledTokenStopsBeforeAnyWork) {
  DtwQueryEngine engine = MakeEngine();
  obs::Counter& cancelled =
      obs::MetricsRegistry::Default().GetCounter("query.cancelled");
  std::uint64_t before = cancelled.value();

  CancelToken token;
  token.Cancel();
  QueryOptions qopts;
  qopts.cancel = &token;

  QueryStats stats;
  std::vector<Neighbor> r = engine.KnnQuery(MakeQuery(), 5, qopts, &stats);
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.exact_dtw_calls, 0u);
  EXPECT_EQ(cancelled.value(), before + 1);
}

TEST(CancelTest, UncancelledTokenChangesNothing) {
  DtwQueryEngine engine = MakeEngine();
  Series q = MakeQuery();
  CancelToken token;
  QueryOptions qopts;
  qopts.cancel = &token;
  QueryStats stats;
  ExpectSameNeighbors(engine.KnnQuery(q, 5),
                      engine.KnnQuery(q, 5, qopts, &stats));
  EXPECT_FALSE(stats.truncated);
}

TEST(DeadlineTest, BatchPropagatesTruncationIntoAggregate) {
  DtwQueryEngine engine = MakeEngine();
  std::vector<Series> queries = {MakeQuery(), MakeQuery()};
  ThreadPool pool(2);
  QueryStats aggregate;
  auto results =
      engine.KnnQueryBatch(queries, 5, pool, ExpiredOptions(), &aggregate);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].empty());
  EXPECT_TRUE(results[1].empty());
  EXPECT_TRUE(aggregate.truncated);
  EXPECT_EQ(aggregate.exact_dtw_calls, 0u);
}

QbhSystem MakeQbhSystem(std::size_t corpus_size) {
  SongGenerator gen(7);
  QbhSystem system;
  for (Melody& m : gen.GeneratePhrases(corpus_size)) {
    system.AddMelody(std::move(m));
  }
  system.Build();
  return system;
}

TEST(SheddingTest, OverloadedPoolShedsDeterministically) {
  QbhSystem system = MakeQbhSystem(20);
  Hummer hummer(HummerProfile::Good(), 5);
  std::vector<Series> hums = {hummer.Hum(*system.melody(0)),
                              hummer.Hum(*system.melody(1))};

  obs::Counter& shed =
      obs::MetricsRegistry::Default().GetCounter("qbh.queries_shed");
  std::uint64_t before = shed.value();

  // Jam a 1-thread pool: one task blocks the worker, two more sit in the
  // queue, so the depth the batch observes is stably >= 2.
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::vector<std::future<void>> fillers;
  for (int i = 0; i < 3; ++i) {
    fillers.push_back(pool.Submit([gate] { gate.wait(); }));
  }

  QueryOptions qopts;
  qopts.max_queue_depth = 1;
  QueryStats aggregate;
  auto results = system.QueryBatch(hums, 3, pool, qopts, &aggregate);

  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].empty());
  EXPECT_TRUE(results[1].empty());
  EXPECT_TRUE(aggregate.truncated);
  EXPECT_EQ(shed.value(), before + 2);

  release.set_value();
  for (std::future<void>& f : fillers) f.get();

  // With the pool drained and shedding still configured — at a bound the
  // batch itself cannot reach, since a just-submitted query counts toward
  // the depth the next submission observes — the same batch runs normally
  // and matches the serial answers.
  qopts.max_queue_depth = hums.size() + 1;
  QueryStats clean_stats;
  auto clean = system.QueryBatch(hums, 3, pool, qopts, &clean_stats);
  EXPECT_FALSE(clean_stats.truncated);
  for (std::size_t i = 0; i < hums.size(); ++i) {
    auto serial = system.Query(hums[i], 3);
    ASSERT_EQ(clean[i].size(), serial.size());
    for (std::size_t j = 0; j < serial.size(); ++j) {
      EXPECT_EQ(clean[i][j].id, serial[j].id);
      EXPECT_EQ(clean[i][j].distance, serial[j].distance);
    }
  }
}

TEST(SheddingTest, InjectedDepthProbeShedsDeterministically) {
  // No pool jamming, no races: the probe dictates the depth each submission
  // observes, so exactly the intended queries are shed — on any host, under
  // any load, first try.
  QbhSystem system = MakeQbhSystem(20);
  Hummer hummer(HummerProfile::Good(), 5);
  std::vector<Series> hums = {hummer.Hum(*system.melody(0)),
                              hummer.Hum(*system.melody(1)),
                              hummer.Hum(*system.melody(2))};

  obs::Counter& shed =
      obs::MetricsRegistry::Default().GetCounter("qbh.queries_shed");
  ThreadPool pool(2);

  // Scripted depths: the first submission sees an overloaded pool, the rest
  // see an idle one — so query 0 is shed and queries 1, 2 run.
  std::size_t probes = 0;
  QueryOptions qopts;
  qopts.max_queue_depth = 4;
  qopts.queue_depth_probe = [&probes]() -> std::size_t {
    return probes++ == 0 ? 10 : 0;
  };

  std::uint64_t before = shed.value();
  QueryStats aggregate;
  auto results = system.QueryBatch(hums, 3, pool, qopts, &aggregate);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].empty());
  EXPECT_FALSE(results[1].empty());
  EXPECT_FALSE(results[2].empty());
  EXPECT_TRUE(aggregate.truncated);
  EXPECT_EQ(shed.value(), before + 1);
  EXPECT_EQ(probes, 3u);  // one decision per query, in submission order

  // The queries that ran are bit-identical to their serial answers: shedding
  // neighbors never perturbs survivors.
  for (std::size_t i = 1; i < hums.size(); ++i) {
    auto serial = system.Query(hums[i], 3);
    ASSERT_EQ(results[i].size(), serial.size());
    for (std::size_t j = 0; j < serial.size(); ++j) {
      EXPECT_EQ(results[i][j].id, serial[j].id);
      EXPECT_EQ(results[i][j].distance, serial[j].distance);
    }
  }

  // Probe saying "always overloaded" sheds everything.
  qopts.queue_depth_probe = [] { return std::size_t{100}; };
  QueryStats all_shed;
  auto none = system.QueryBatch(hums, 3, pool, qopts, &all_shed);
  for (const auto& r : none) EXPECT_TRUE(r.empty());
  EXPECT_EQ(shed.value(), before + 1 + hums.size());
}

TEST(SheddingTest, ZeroMaxQueueDepthNeverSheds) {
  QbhSystem system = MakeQbhSystem(10);
  Hummer hummer(HummerProfile::Good(), 5);
  std::vector<Series> hums = {hummer.Hum(*system.melody(0))};
  ThreadPool pool(1);
  QueryStats aggregate;
  auto results = system.QueryBatch(hums, 3, pool, QueryOptions(), &aggregate);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].empty());
  EXPECT_FALSE(aggregate.truncated);
}

TEST(ObservabilityTest, FailureCountersAppearInPrometheusExport) {
  // Touch each failure path once so the counters exist in the registry.
  DtwQueryEngine engine = MakeEngine(50);
  QueryStats stats;
  engine.KnnQuery(MakeQuery(), 3, ExpiredOptions(), &stats);  // deadline.expired

  std::string bad = "humdex-db v2\ncrc32c 00000000\n";
  EXPECT_FALSE(ParseQbhDatabase(bad).ok());  // storage.corruption_detected

  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.sleep = [](std::uint64_t) {};
  RetryWithBackoff(policy, [] { return Status::IoError("x"); });  // io.retries

  std::string page = obs::ExportPrometheus(obs::MetricsRegistry::Default());
  EXPECT_NE(page.find("deadline_expired"), std::string::npos) << page;
  EXPECT_NE(page.find("storage_corruption_detected"), std::string::npos);
  EXPECT_NE(page.find("io_retries"), std::string::npos);
}

}  // namespace
}  // namespace humdex
