// Wire protocol: framing and request/response round trips, plus the
// hostile-input paths — every malformed payload must come back as a Status
// error (which the server turns into an `err` response), never an abort.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "serve/protocol.h"

namespace humdex {
namespace serve {
namespace {

std::string Framed(const std::string& payload) { return EncodeFrame(payload); }

TEST(ProtocolFrameTest, RoundTripsPayloads) {
  for (const std::string payload : {std::string(), std::string("x"),
                                    std::string(1000, 'q')}) {
    const std::string buffer = Framed(payload);
    std::string got;
    std::size_t consumed = 0;
    bool complete = false;
    ASSERT_TRUE(DecodeFrame(buffer, &got, &consumed, &complete).ok());
    EXPECT_TRUE(complete);
    EXPECT_EQ(consumed, buffer.size());
    EXPECT_EQ(got, payload);
  }
}

TEST(ProtocolFrameTest, IncompleteFramesWaitForMoreBytes) {
  const std::string buffer = Framed("hello world");
  for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
    std::string got;
    std::size_t consumed = 9;
    bool complete = true;
    ASSERT_TRUE(
        DecodeFrame(buffer.substr(0, cut), &got, &consumed, &complete).ok());
    EXPECT_FALSE(complete);
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(ProtocolFrameTest, TwoFramesDecodeInSequence) {
  const std::string buffer = Framed("first") + Framed("second");
  std::string got;
  std::size_t consumed = 0;
  bool complete = false;
  ASSERT_TRUE(DecodeFrame(buffer, &got, &consumed, &complete).ok());
  ASSERT_TRUE(complete);
  EXPECT_EQ(got, "first");
  ASSERT_TRUE(
      DecodeFrame(buffer.substr(consumed), &got, &consumed, &complete).ok());
  ASSERT_TRUE(complete);
  EXPECT_EQ(got, "second");
}

TEST(ProtocolFrameTest, OversizedLengthHeaderIsAnError) {
  std::string buffer = Framed("");
  buffer[3] = static_cast<char>(0xff);  // announce ~4GB
  std::string got;
  std::size_t consumed = 0;
  bool complete = false;
  EXPECT_FALSE(DecodeFrame(buffer, &got, &consumed, &complete).ok());
}

TEST(ProtocolRequestTest, QueryRoundTrips) {
  Request request;
  request.kind = Request::Kind::kQuery;
  request.top_k = 7;
  request.deadline_ms = 250;
  request.pitch = {60.0, 62.5, -1.0, 64.000000001};
  Request parsed;
  ASSERT_TRUE(ParseRequest(EncodeRequest(request), &parsed).ok());
  EXPECT_EQ(parsed.kind, Request::Kind::kQuery);
  EXPECT_EQ(parsed.top_k, 7u);
  EXPECT_EQ(parsed.deadline_ms, 250u);
  ASSERT_EQ(parsed.pitch.size(), request.pitch.size());
  for (std::size_t i = 0; i < request.pitch.size(); ++i) {
    EXPECT_EQ(parsed.pitch[i], request.pitch[i]);  // %.17g is bit-exact
  }
}

TEST(ProtocolRequestTest, RangeAndControlVerbsRoundTrip) {
  Request range;
  range.kind = Request::Kind::kRange;
  range.epsilon = 3.25;
  range.pitch = {1.0, 2.0};
  Request parsed;
  ASSERT_TRUE(ParseRequest(EncodeRequest(range), &parsed).ok());
  EXPECT_EQ(parsed.kind, Request::Kind::kRange);
  EXPECT_EQ(parsed.epsilon, 3.25);

  for (Request::Kind kind : {Request::Kind::kPing, Request::Kind::kHealth,
                             Request::Kind::kMetrics}) {
    Request control;
    control.kind = kind;
    ASSERT_TRUE(ParseRequest(EncodeRequest(control), &parsed).ok());
    EXPECT_EQ(parsed.kind, kind);
  }
}

TEST(ProtocolRequestTest, HostileRequestsAreStatusErrorsNotAborts) {
  Request parsed;
  for (const std::string payload : {
           std::string(),                        // empty
           std::string("launch missiles\n"),     // unknown verb
           std::string("query\n"),               // missing args
           std::string("query 0 10\npitch 1\n"),  // top_k = 0
           std::string("query 99999999999 0\npitch 1\n"),  // absurd top_k
           std::string("query 5 999999999999999\npitch 1\n"),  // absurd ms
           std::string("query 5 10\n"),          // missing pitch line
           std::string("query 5 10\npitch 1 2 nan_garbage\n"),
           std::string("range inf 0\npitch 1\n"),  // non-finite epsilon
           std::string("range -1 0\npitch 1\n"),
       }) {
    EXPECT_FALSE(ParseRequest(payload, &parsed).ok()) << payload;
  }
  // An empty pitch series parses: the engine rejects it downstream.
  EXPECT_TRUE(ParseRequest("query 5 0\npitch\n", &parsed).ok());
  EXPECT_TRUE(parsed.pitch.empty());
}

TEST(ProtocolResponseTest, MatchListRoundTrips) {
  Response response;
  response.ok = true;
  response.partial = true;
  response.truncated = false;
  response.shards_failed = 2;
  QbhMatch a;
  a.id = 41;
  a.distance = 1.25e-3;
  a.name = "song with spaces in the name";
  QbhMatch b;
  b.id = 7;
  b.distance = 2.0;
  b.name = "plain";
  response.matches = {a, b};
  Response parsed;
  ASSERT_TRUE(ParseResponse(EncodeResponse(response), &parsed).ok());
  EXPECT_TRUE(parsed.ok);
  EXPECT_TRUE(parsed.partial);
  EXPECT_FALSE(parsed.truncated);
  EXPECT_EQ(parsed.shards_failed, 2u);
  ASSERT_EQ(parsed.matches.size(), 2u);
  EXPECT_EQ(parsed.matches[0].id, 41);
  EXPECT_EQ(parsed.matches[0].distance, 1.25e-3);
  EXPECT_EQ(parsed.matches[0].name, "song with spaces in the name");
  EXPECT_EQ(parsed.matches[1].id, 7);
}

TEST(ProtocolResponseTest, ErrorAndBodyRoundTrip) {
  Response err;
  err.ok = false;
  err.error = "shard exploded\nwith a newline";
  Response parsed;
  ASSERT_TRUE(ParseResponse(EncodeResponse(err), &parsed).ok());
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.error, "shard exploded with a newline");

  Response body;
  body.ok = true;
  body.text = "shards 4 serving 3\nshard 0 healthy read_only=0 lossy=0\n";
  ASSERT_TRUE(ParseResponse(EncodeResponse(body), &parsed).ok());
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.text, body.text);
}

TEST(ProtocolResponseTest, HostileResponsesAreStatusErrors) {
  Response parsed;
  for (const std::string payload : {
           std::string(),
           std::string("yo 1 0 0 0\n"),
           std::string("ok 2 0 0 0\nmatch 1 1.0 a\n"),  // count lies
           std::string("ok 1 0 0 0\nnot_a_match\n"),
           std::string("ok 99999999999999 0 0 0\n"),  // absurd count
       }) {
    EXPECT_FALSE(ParseResponse(payload, &parsed).ok()) << payload;
  }
}

}  // namespace
}  // namespace serve
}  // namespace humdex
