// humdexd server: full dispatch through HandlePayload (socket-free), then a
// real loopback TCP round trip. Every hostile payload must produce an `err`
// response or a dropped connection — the daemon never aborts.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "music/hummer.h"
#include "music/song_generator.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace humdex {
namespace serve {
namespace {

struct Fixture {
  std::vector<Melody> corpus;
  std::unique_ptr<ShardedEngine> engine;
  Series hum;

  Fixture() {
    SongGenerator gen(7);
    corpus = gen.GeneratePhrases(16);
    ShardedOptions opts;
    opts.num_shards = 2;
    auto r = ShardedEngine::Create(corpus, opts);
    EXPECT_TRUE(r.ok());
    engine = std::move(r).value();
    hum = Hummer(HummerProfile::Good(), 3).Hum(corpus[4]);
  }
};

Response Dispatch(const HumdexServer& server, const Request& request) {
  Response response;
  Status st =
      ParseResponse(server.HandlePayload(EncodeRequest(request)), &response);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return response;
}

TEST(HumdexServerTest, PingQueryHealthMetricsDispatch) {
  Fixture fx;
  HumdexServer server(fx.engine.get(), ServerOptions());

  Request ping;
  ping.kind = Request::Kind::kPing;
  Response response = Dispatch(server, ping);
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.text, "pong\n");

  Request query;
  query.kind = Request::Kind::kQuery;
  query.top_k = 5;
  query.pitch = fx.hum;
  response = Dispatch(server, query);
  ASSERT_TRUE(response.ok);
  EXPECT_FALSE(response.partial);
  auto expect = fx.engine->Query(fx.hum, 5);
  ASSERT_EQ(response.matches.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(response.matches[i].id, expect[i].id);
    EXPECT_EQ(response.matches[i].distance, expect[i].distance);
    EXPECT_EQ(response.matches[i].name, expect[i].name);
  }

  Request range;
  range.kind = Request::Kind::kRange;
  range.epsilon = expect.empty() ? 1.0 : expect.back().distance;
  range.pitch = fx.hum;
  response = Dispatch(server, range);
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.matches.size(),
            fx.engine->RangeQuery(fx.hum, range.epsilon).size());

  Request health;
  health.kind = Request::Kind::kHealth;
  response = Dispatch(server, health);
  ASSERT_TRUE(response.ok);
  EXPECT_NE(response.text.find("shards 2 serving 2"), std::string::npos);
  EXPECT_NE(response.text.find("shard 0 healthy"), std::string::npos);

  Request metrics;
  metrics.kind = Request::Kind::kMetrics;
  response = Dispatch(server, metrics);
  ASSERT_TRUE(response.ok);
  EXPECT_NE(response.text.find("serve_queries"), std::string::npos);
}

TEST(HumdexServerTest, HealthPageReflectsQuarantine) {
  Fixture fx;
  HumdexServer server(fx.engine.get(), ServerOptions());
  fx.engine->QuarantineShard(1);

  Request health;
  health.kind = Request::Kind::kHealth;
  Response response = Dispatch(server, health);
  ASSERT_TRUE(response.ok);
  EXPECT_NE(response.text.find("shards 2 serving 1"), std::string::npos);
  EXPECT_NE(response.text.find("shard 1 quarantined"), std::string::npos);

  Request query;
  query.kind = Request::Kind::kQuery;
  query.top_k = 3;
  query.pitch = fx.hum;
  response = Dispatch(server, query);
  ASSERT_TRUE(response.ok);
  EXPECT_TRUE(response.partial);
  EXPECT_EQ(response.shards_failed, 1u);
}

TEST(HumdexServerTest, HostilePayloadsGetErrorResponsesNeverAborts) {
  Fixture fx;
  HumdexServer server(fx.engine.get(), ServerOptions());
  for (const std::string payload :
       {std::string(), std::string("garbage\n"), std::string("query\n"),
        std::string("query 0 0\npitch 1\n"),
        std::string("\x00\x01\x02\x03", 4)}) {
    const std::string response = server.HandlePayload(payload);
    EXPECT_EQ(response.rfind("err ", 0), 0u) << payload;
  }
  // Unservable (empty) hum: a well-formed request the engine rejects.
  const std::string response = server.HandlePayload("query 5 0\npitch\n");
  Response parsed;
  ASSERT_TRUE(ParseResponse(response, &parsed).ok());
  EXPECT_TRUE(parsed.ok);
  EXPECT_TRUE(parsed.matches.empty());
  EXPECT_TRUE(parsed.truncated);  // flagged, not served
}

// --- Real sockets ------------------------------------------------------------

int DialLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t r = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (r <= 0) return false;
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

/// Read one response frame (blocking reads until a full frame decodes).
bool RecvFrame(int fd, std::string* payload) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    std::size_t consumed = 0;
    bool complete = false;
    if (!DecodeFrame(buffer, payload, &consumed, &complete).ok()) return false;
    if (complete) return true;
    const ssize_t r = ::read(fd, chunk, sizeof(chunk));
    if (r <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(r));
  }
}

TEST(HumdexServerTest, ServesQueriesOverLoopbackTcp) {
  Fixture fx;
  HumdexServer server(fx.engine.get(), ServerOptions());
  Status st = server.Start();
  if (!st.ok()) GTEST_SKIP() << "no loopback sockets here: " << st.ToString();
  ASSERT_GT(server.port(), 0);

  const int fd = DialLoopback(server.port());
  ASSERT_GE(fd, 0);

  // Two requests on one connection: ping, then a real query.
  Request ping;
  ping.kind = Request::Kind::kPing;
  ASSERT_TRUE(SendAll(fd, EncodeFrame(EncodeRequest(ping))));
  std::string payload;
  ASSERT_TRUE(RecvFrame(fd, &payload));
  Response response;
  ASSERT_TRUE(ParseResponse(payload, &response).ok());
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.text, "pong\n");

  Request query;
  query.kind = Request::Kind::kQuery;
  query.top_k = 4;
  query.pitch = fx.hum;
  ASSERT_TRUE(SendAll(fd, EncodeFrame(EncodeRequest(query))));
  ASSERT_TRUE(RecvFrame(fd, &payload));
  ASSERT_TRUE(ParseResponse(payload, &response).ok());
  ASSERT_TRUE(response.ok);
  auto expect = fx.engine->Query(fx.hum, 4);
  ASSERT_EQ(response.matches.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(response.matches[i].id, expect[i].id);
    EXPECT_EQ(response.matches[i].distance, expect[i].distance);
  }

  ::close(fd);
  server.Stop();
  EXPECT_GE(server.connections_served(), 1u);
}

TEST(HumdexServerTest, OversizedFrameHeaderDropsTheConnection) {
  Fixture fx;
  HumdexServer server(fx.engine.get(), ServerOptions());
  Status st = server.Start();
  if (!st.ok()) GTEST_SKIP() << "no loopback sockets here: " << st.ToString();

  const int fd = DialLoopback(server.port());
  ASSERT_GE(fd, 0);
  // A header announcing 4GB: the server must drop us without allocating.
  ASSERT_TRUE(SendAll(fd, std::string("\xff\xff\xff\xff", 4)));
  char byte;
  EXPECT_LE(::read(fd, &byte, 1), 0);  // EOF: connection dropped
  ::close(fd);

  // The server is still alive and serving.
  const int fd2 = DialLoopback(server.port());
  ASSERT_GE(fd2, 0);
  Request ping;
  ping.kind = Request::Kind::kPing;
  ASSERT_TRUE(SendAll(fd2, EncodeFrame(EncodeRequest(ping))));
  std::string payload;
  ASSERT_TRUE(RecvFrame(fd2, &payload));
  ::close(fd2);
  server.Stop();
}

TEST(HumdexServerTest, ClientDisconnectMidResponseDoesNotKillTheServer) {
  Fixture fx;
  HumdexServer server(fx.engine.get(), ServerOptions());
  Status st = server.Start();
  if (!st.ok()) GTEST_SKIP() << "no loopback sockets here: " << st.ToString();

  // Pipeline several large responses and slam the connection shut with an
  // RST before draining them: the server's writes hit a dead socket. The
  // default SIGPIPE disposition would kill the whole process here; the
  // server must shrug (EPIPE) and keep serving other clients.
  const int fd = DialLoopback(server.port());
  ASSERT_GE(fd, 0);
  Request metrics;
  metrics.kind = Request::Kind::kMetrics;
  std::string burst;
  for (int i = 0; i < 16; ++i) burst += EncodeFrame(EncodeRequest(metrics));
  ASSERT_TRUE(SendAll(fd, burst));
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;  // close() sends RST, not FIN
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  ::close(fd);

  // Give the handler thread time to run into the reset socket.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const int fd2 = DialLoopback(server.port());
  ASSERT_GE(fd2, 0);
  Request ping;
  ping.kind = Request::Kind::kPing;
  ASSERT_TRUE(SendAll(fd2, EncodeFrame(EncodeRequest(ping))));
  std::string payload;
  ASSERT_TRUE(RecvFrame(fd2, &payload));
  Response response;
  ASSERT_TRUE(ParseResponse(payload, &response).ok());
  EXPECT_TRUE(response.ok);
  ::close(fd2);
  server.Stop();
}

TEST(HumdexServerTest, IdleConnectionIsDisconnectedAndCounted) {
  Fixture fx;
  ServerOptions opts;
  opts.idle_timeout_ms = 100;
  HumdexServer server(fx.engine.get(), opts);
  Status st = server.Start();
  if (!st.ok()) GTEST_SKIP() << "no loopback sockets here: " << st.ToString();
  const std::uint64_t idle_before =
      obs::MetricsRegistry::Default()
          .GetCounter("server.idle_disconnects")
          .value();

  // Connect and send nothing: the server must hang up on us (EOF) instead
  // of pinning a handler thread forever, and count the disconnect.
  const int fd = DialLoopback(server.port());
  ASSERT_GE(fd, 0);
  char byte;
  EXPECT_LE(::read(fd, &byte, 1), 0);  // blocks until the server gives up
  ::close(fd);
  EXPECT_GT(obs::MetricsRegistry::Default()
                .GetCounter("server.idle_disconnects")
                .value(),
            idle_before);

  // A live connection with traffic is unaffected mid-exchange.
  const int fd2 = DialLoopback(server.port());
  ASSERT_GE(fd2, 0);
  Request ping;
  ping.kind = Request::Kind::kPing;
  ASSERT_TRUE(SendAll(fd2, EncodeFrame(EncodeRequest(ping))));
  std::string payload;
  ASSERT_TRUE(RecvFrame(fd2, &payload));
  ::close(fd2);
  server.Stop();
}

TEST(HumdexServerTest, HealthPageListsReplicas) {
  SongGenerator gen(7);
  std::vector<Melody> corpus = gen.GeneratePhrases(16);
  ShardedOptions opts;
  opts.num_shards = 2;
  opts.replication = 2;
  auto r = ShardedEngine::Create(corpus, opts);
  ASSERT_TRUE(r.ok());
  auto engine = std::move(r).value();
  HumdexServer server(engine.get(), ServerOptions());
  engine->QuarantineReplica(1, 0);

  Request health;
  health.kind = Request::Kind::kHealth;
  Response response = Dispatch(server, health);
  ASSERT_TRUE(response.ok);
  EXPECT_NE(response.text.find("replication 2"), std::string::npos);
  EXPECT_NE(response.text.find("replicas=2/2"), std::string::npos);
  EXPECT_NE(response.text.find("replicas=1/2"), std::string::npos);
  EXPECT_NE(response.text.find("replica 1/0 quarantined"), std::string::npos);
  EXPECT_NE(response.text.find("replica 1/1 healthy"), std::string::npos);
}

TEST(HumdexServerTest, StartStopIsIdempotentAndRestartable) {
  Fixture fx;
  HumdexServer server(fx.engine.get(), ServerOptions());
  Status st = server.Start();
  if (!st.ok()) GTEST_SKIP() << "no loopback sockets here: " << st.ToString();
  EXPECT_FALSE(server.Start().ok());  // already running
  server.Stop();
  server.Stop();  // idempotent
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace humdex
