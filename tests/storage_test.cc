#include <gtest/gtest.h>

#include <cstdio>

#include "music/hummer.h"
#include "music/song_generator.h"
#include "qbh/storage.h"

namespace humdex {
namespace {

QbhSystem MakeSystem(QbhOptions opt, std::size_t corpus_size,
                     std::uint64_t seed = 3) {
  SongGenerator gen(seed);
  QbhSystem system(opt);
  for (Melody& m : gen.GeneratePhrases(corpus_size)) system.AddMelody(std::move(m));
  system.Build();
  return system;
}

TEST(StorageTest, RoundTripPreservesOptionsAndCorpus) {
  QbhOptions opt;
  opt.normal_len = 64;
  opt.warping_width = 0.15;
  opt.feature_dim = 4;
  opt.scheme = SchemeKind::kDwt;
  opt.index = IndexKind::kGridFile;
  opt.samples_per_beat = 4.0;
  QbhSystem original = MakeSystem(opt, 40);

  Result<QbhSystem> loaded = ParseQbhDatabase(SerializeQbhDatabase(original));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const QbhSystem& sys = loaded.value();
  EXPECT_TRUE(sys.built());
  EXPECT_EQ(sys.size(), original.size());
  EXPECT_EQ(sys.options().normal_len, 64u);
  EXPECT_DOUBLE_EQ(sys.options().warping_width, 0.15);
  EXPECT_EQ(sys.options().feature_dim, 4u);
  EXPECT_EQ(sys.options().scheme, SchemeKind::kDwt);
  EXPECT_EQ(sys.options().index, IndexKind::kGridFile);
  EXPECT_EQ(sys.melody(7)->name, original.melody(7)->name);
}

TEST(StorageTest, LoadedSystemAnswersQueriesIdentically) {
  QbhSystem original = MakeSystem(QbhOptions(), 120, 9);
  Result<QbhSystem> loaded = ParseQbhDatabase(SerializeQbhDatabase(original));
  ASSERT_TRUE(loaded.ok());

  Hummer hummer(HummerProfile::Good(), 5);
  Series hum = hummer.Hum(*original.melody(33));
  auto a = original.Query(hum, 5);
  auto b = loaded.value().Query(hum, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_NEAR(a[i].distance, b[i].distance, 1e-9);
  }
}

TEST(StorageTest, FileRoundTrip) {
  QbhSystem original = MakeSystem(QbhOptions(), 20, 11);
  std::string path = ::testing::TempDir() + "/humdex_storage_test.db";
  ASSERT_TRUE(SaveQbhDatabase(path, original).ok());
  Result<QbhSystem> loaded = LoadQbhDatabase(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 20u);
  std::remove(path.c_str());
}

TEST(StorageTest, RejectsMalformedDatabases) {
  EXPECT_FALSE(ParseQbhDatabase("").ok());
  EXPECT_FALSE(ParseQbhDatabase("not a db\n").ok());
  EXPECT_FALSE(ParseQbhDatabase("humdex-db v1\n").ok());  // no melodies
  EXPECT_FALSE(
      ParseQbhDatabase("humdex-db v1\noption scheme martian\nmelody a\n60 1\nend\n")
          .ok());
  EXPECT_FALSE(
      ParseQbhDatabase("humdex-db v1\noption bogus 1\nmelody a\n60 1\nend\n").ok());
  EXPECT_FALSE(ParseQbhDatabase("humdex-db v1\nmelody a\n60 oops\nend\n").ok());
}

TEST(StorageTest, MissingFileIsNotFound) {
  Result<QbhSystem> r = LoadQbhDatabase("/nonexistent/humdex.db");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

}  // namespace
}  // namespace humdex
