// Cross-module property sweeps: the paper's correctness claims checked over
// parameter grids (warping width x dimensionality x data family).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "transform/feature_scheme.h"
#include "ts/dtw.h"
#include "ts/lower_bound.h"
#include "util/random.h"

namespace humdex {
namespace {

enum class DataFamily { kRandomWalk, kWhiteNoise, kSine, kStep, kMelodyLike };

Series MakeSeries(DataFamily family, Rng* rng, std::size_t n) {
  Series x(n);
  switch (family) {
    case DataFamily::kRandomWalk: {
      double v = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        v += rng->Gaussian();
        x[i] = v;
      }
      break;
    }
    case DataFamily::kWhiteNoise:
      for (double& v : x) v = rng->Gaussian();
      break;
    case DataFamily::kSine: {
      double freq = rng->Uniform(1.0, 6.0);
      double phase = rng->Uniform(0.0, 2.0 * M_PI);
      double amp = rng->Uniform(0.5, 3.0);
      for (std::size_t i = 0; i < n; ++i) {
        x[i] = amp * std::sin(2.0 * M_PI * freq * i / n + phase);
      }
      break;
    }
    case DataFamily::kStep: {
      double level = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (rng->Bernoulli(0.05)) level = rng->Uniform(-3.0, 3.0);
        x[i] = level;
      }
      break;
    }
    case DataFamily::kMelodyLike: {
      double pitch = rng->UniformInt(-6, 6);
      std::size_t i = 0;
      while (i < n) {
        std::size_t dur = static_cast<std::size_t>(rng->UniformInt(4, 16));
        for (std::size_t j = 0; j < dur && i < n; ++j, ++i) x[i] = pitch;
        pitch += rng->UniformInt(-3, 3);
      }
      break;
    }
  }
  return x;
}

using SweepParam = std::tuple<DataFamily, std::size_t /*k*/, std::size_t /*dim*/>;

class TheoremOneSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TheoremOneSweep, AllSchemesLowerBoundDtw) {
  auto [family, k, dim] = GetParam();
  const std::size_t n = 64;
  Rng rng(static_cast<std::uint64_t>(k * 100 + dim));
  std::vector<Series> corpus;
  for (int i = 0; i < 30; ++i) corpus.push_back(MakeSeries(family, &rng, n));

  std::vector<std::shared_ptr<FeatureScheme>> schemes = {
      MakeNewPaaScheme(n, dim), MakeKeoghPaaScheme(n, dim), MakeDftScheme(n, dim),
      MakeDwtScheme(n, dim), MakeSvdScheme(corpus, dim)};

  for (int trial = 0; trial < 15; ++trial) {
    Series x = MakeSeries(family, &rng, n);
    Series y = MakeSeries(family, &rng, n);
    double dtw = LdtwDistance(x, y, k);
    Envelope env_y = BuildEnvelope(y, k);
    double lb_raw = LbKeogh(x, env_y);
    EXPECT_LE(lb_raw, dtw + 1e-9);
    for (const auto& scheme : schemes) {
      Series fx = scheme->Features(x);
      Envelope fe = scheme->ReduceEnvelope(env_y);
      double lb = DistanceToEnvelope(fx, fe);
      EXPECT_LE(lb, dtw + 1e-9) << scheme->name() << " k=" << k << " dim=" << dim;
      // Reduced-dimension bound can never beat the raw envelope bound.
      EXPECT_LE(lb, lb_raw + 1e-9) << scheme->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TheoremOneSweep,
    ::testing::Combine(::testing::Values(DataFamily::kRandomWalk,
                                         DataFamily::kWhiteNoise, DataFamily::kSine,
                                         DataFamily::kStep, DataFamily::kMelodyLike),
                       ::testing::Values(0u, 3u, 6u, 13u),
                       ::testing::Values(4u, 8u, 16u)));

// DESIGN.md §11: the reference-point bound chain. For any reference r,
// LB_Triangle(x, r, y) <= LB_Keogh(x, Env(y)) <= LDTW(x, y) — the triangle
// bound relaxes the reverse Keogh bound through a reference envelope, so it
// must never cross either. Swept over every data family and band width.
class TriangleBoundSweep
    : public ::testing::TestWithParam<std::tuple<DataFamily, std::size_t>> {};

TEST_P(TriangleBoundSweep, TriangleNeverExceedsKeoghNorDtw) {
  auto [family, k] = GetParam();
  const std::size_t n = 64;
  Rng rng(static_cast<std::uint64_t>(31000 + static_cast<int>(family) * 50 +
                                     k));
  for (int trial = 0; trial < 25; ++trial) {
    Series x = MakeSeries(family, &rng, n);
    Series y = MakeSeries(family, &rng, n);
    Series r = MakeSeries(family, &rng, n);
    Envelope env_y = BuildEnvelope(y, k);
    Envelope env_r = BuildEnvelope(r, k);
    double tri = LbTriangle(x, env_r, env_y);
    double keogh = DistanceToEnvelope(x, env_y);
    double dtw = LdtwDistance(x, y, k);
    EXPECT_GE(tri, 0.0);
    EXPECT_LE(tri, keogh + 1e-9) << "family=" << static_cast<int>(family)
                                 << " k=" << k << " trial=" << trial;
    EXPECT_LE(keogh, dtw + 1e-9);
  }
}

TEST_P(TriangleBoundSweep, EnvelopeGapReverseTriangleHolds) {
  // The inequality LbTriangle is built from: for every point series x and
  // envelope pair A, B,  d(x, B) >= d(x, A) - h(A, B)  where h is
  // EnvelopeGap. Also pins down h's metric-flavored basics: symmetry and
  // h(A, A) == 0.
  auto [family, k] = GetParam();
  const std::size_t n = 64;
  Rng rng(static_cast<std::uint64_t>(37000 + static_cast<int>(family) * 50 +
                                     k));
  for (int trial = 0; trial < 25; ++trial) {
    Series x = MakeSeries(family, &rng, n);
    Envelope a = BuildEnvelope(MakeSeries(family, &rng, n), k);
    Envelope b = BuildEnvelope(MakeSeries(family, &rng, n), k);
    double h = EnvelopeGap(a, b);
    EXPECT_EQ(h, EnvelopeGap(b, a));
    EXPECT_EQ(EnvelopeGap(a, a), 0.0);
    EXPECT_GE(DistanceToEnvelope(x, b),
              DistanceToEnvelope(x, a) - h - 1e-9)
        << "family=" << static_cast<int>(family) << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TriangleBoundSweep,
    ::testing::Combine(::testing::Values(DataFamily::kRandomWalk,
                                         DataFamily::kWhiteNoise,
                                         DataFamily::kSine, DataFamily::kStep,
                                         DataFamily::kMelodyLike),
                       ::testing::Values(0u, 3u, 6u, 13u)));

class NewBeatsKeoghSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(NewBeatsKeoghSweep, NewPaaTightnessDominates) {
  auto [k, dim] = GetParam();
  const std::size_t n = 128;
  Rng rng(static_cast<std::uint64_t>(7000 + k * 10 + dim));
  auto new_paa = MakeNewPaaScheme(n, dim);
  auto keogh = MakeKeoghPaaScheme(n, dim);
  for (int trial = 0; trial < 40; ++trial) {
    Series x = MakeSeries(DataFamily::kRandomWalk, &rng, n);
    Series y = MakeSeries(DataFamily::kRandomWalk, &rng, n);
    Envelope env_y = BuildEnvelope(y, k);
    double lb_new = DistanceToEnvelope(new_paa->Features(x),
                                       new_paa->ReduceEnvelope(env_y));
    double lb_keogh = DistanceToEnvelope(keogh->Features(x),
                                         keogh->ReduceEnvelope(env_y));
    EXPECT_GE(lb_new, lb_keogh - 1e-9) << "k=" << k << " dim=" << dim;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, NewBeatsKeoghSweep,
                         ::testing::Combine(::testing::Values(0u, 3u, 6u, 13u, 26u),
                                            ::testing::Values(4u, 8u, 16u, 32u)));

class EnvelopeWidthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EnvelopeWidthSweep, BoundsLooseMonotonicallyWithBand) {
  // Wider bands -> wider envelopes -> smaller (looser) lower bounds, for the
  // raw bound and for every reduced bound.
  const std::size_t dim = GetParam();
  const std::size_t n = 128;
  Rng rng(9000 + dim);
  auto scheme = MakeNewPaaScheme(n, dim);
  for (int trial = 0; trial < 20; ++trial) {
    Series x = MakeSeries(DataFamily::kRandomWalk, &rng, n);
    Series y = MakeSeries(DataFamily::kRandomWalk, &rng, n);
    double prev_raw = kInfiniteDistance, prev_red = kInfiniteDistance;
    for (std::size_t k : {0u, 2u, 4u, 8u, 16u, 32u}) {
      Envelope env = BuildEnvelope(y, k);
      double raw = LbKeogh(x, env);
      double red = DistanceToEnvelope(scheme->Features(x), scheme->ReduceEnvelope(env));
      EXPECT_LE(raw, prev_raw + 1e-9);
      EXPECT_LE(red, prev_red + 1e-9);
      prev_raw = raw;
      prev_red = red;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, EnvelopeWidthSweep, ::testing::Values(4u, 8u, 32u));

}  // namespace
}  // namespace humdex
