// Metamorphic properties of the query engine: transformations of the corpus
// or query with a predictable effect on the answers.
#include <gtest/gtest.h>

#include <algorithm>

#include "gemini/query_engine.h"
#include "ts/dtw.h"
#include "ts/normal_form.h"
#include "util/random.h"

namespace humdex {
namespace {

Series RandomWalk(Rng* rng, std::size_t n) {
  Series x(n);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v += rng->Gaussian();
    x[i] = v;
  }
  return x;
}

std::unique_ptr<DtwQueryEngine> MakeEngine(const std::vector<Series>& corpus) {
  QueryEngineOptions opts;
  auto engine = std::make_unique<DtwQueryEngine>(MakeNewPaaScheme(128, 8), opts);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    engine->Add(corpus[i], static_cast<std::int64_t>(i));
  }
  return engine;
}

TEST(MetamorphicTest, AddingFarAwaySeriesDoesNotChangeAnswers) {
  Rng rng(3);
  std::vector<Series> corpus;
  for (int i = 0; i < 150; ++i) corpus.push_back(RandomWalk(&rng, 128));
  auto base = MakeEngine(corpus);

  std::vector<Series> polluted = corpus;
  for (int i = 0; i < 150; ++i) {
    Series far = RandomWalk(&rng, 128);
    for (double& v : far) v += 1e5;  // far from every query below
    polluted.push_back(far);
  }
  auto engine2 = MakeEngine(polluted);

  for (int q = 0; q < 10; ++q) {
    Series query = RandomWalk(&rng, 128);
    auto a = base->RangeQuery(query, 10.0);
    auto b = engine2->RangeQuery(query, 10.0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_NEAR(a[i].distance, b[i].distance, 1e-9);
    }
  }
}

TEST(MetamorphicTest, InsertionOrderIrrelevantToAnswers) {
  Rng rng(5);
  std::vector<Series> corpus;
  for (int i = 0; i < 300; ++i) corpus.push_back(RandomWalk(&rng, 128));

  QueryEngineOptions opts;
  DtwQueryEngine forward(MakeNewPaaScheme(128, 8), opts);
  DtwQueryEngine backward(MakeNewPaaScheme(128, 8), opts);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    forward.Add(corpus[i], static_cast<std::int64_t>(i));
  }
  for (std::size_t i = corpus.size(); i-- > 0;) {
    backward.Add(corpus[i], static_cast<std::int64_t>(i));
  }
  for (int q = 0; q < 10; ++q) {
    Series query = RandomWalk(&rng, 128);
    auto a = forward.RangeQuery(query, 9.0);
    auto b = backward.RangeQuery(query, 9.0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
  }
}

TEST(MetamorphicTest, GrowingRadiusGrowsResultSetMonotonically) {
  Rng rng(7);
  std::vector<Series> corpus;
  for (int i = 0; i < 200; ++i) corpus.push_back(RandomWalk(&rng, 128));
  auto engine = MakeEngine(corpus);
  for (int q = 0; q < 5; ++q) {
    Series query = RandomWalk(&rng, 128);
    std::size_t prev = 0;
    for (double eps : {2.0, 5.0, 8.0, 12.0, 20.0}) {
      std::size_t count = engine->RangeQuery(query, eps).size();
      EXPECT_GE(count, prev);
      prev = count;
    }
  }
}

TEST(MetamorphicTest, QueryingAStoredSeriesReturnsItFirst) {
  Rng rng(9);
  std::vector<Series> corpus;
  for (int i = 0; i < 200; ++i) corpus.push_back(RandomWalk(&rng, 128));
  auto engine = MakeEngine(corpus);
  for (std::int64_t id : {0, 57, 199}) {
    auto nn = engine->KnnQuery(corpus[static_cast<std::size_t>(id)], 1);
    ASSERT_EQ(nn.size(), 1u);
    EXPECT_DOUBLE_EQ(nn[0].distance, 0.0);
  }
}

TEST(MetamorphicTest, BulkAndIncrementalBuildsAnswerIdentically) {
  Rng rng(11);
  std::vector<Series> corpus;
  for (int i = 0; i < 500; ++i) corpus.push_back(RandomWalk(&rng, 128));

  QueryEngineOptions opts;
  DtwQueryEngine incremental(MakeNewPaaScheme(128, 8), opts);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    incremental.Add(corpus[i], static_cast<std::int64_t>(i));
  }
  DtwQueryEngine bulk(MakeNewPaaScheme(128, 8), opts);
  bulk.AddAll(corpus);

  for (int q = 0; q < 10; ++q) {
    Series query = RandomWalk(&rng, 128);
    auto a = incremental.RangeQuery(query, 9.0);
    auto b = bulk.RangeQuery(query, 9.0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_NEAR(a[i].distance, b[i].distance, 1e-9);
    }
    auto ka = incremental.KnnQuery(query, 7);
    auto kb = bulk.KnnQuery(query, 7);
    ASSERT_EQ(ka.size(), kb.size());
    for (std::size_t i = 0; i < ka.size(); ++i) {
      EXPECT_NEAR(ka[i].distance, kb[i].distance, 1e-9);
    }
  }
}

TEST(MetamorphicTest, UniformTempoChangeOfQueryIsAbsorbedByNormalForm) {
  Rng rng(13);
  std::vector<Series> corpus;
  for (int i = 0; i < 100; ++i) corpus.push_back(RandomWalk(&rng, 128));
  auto engine = MakeEngine(corpus);

  Series raw = RandomWalk(&rng, 40);
  Series normal = NormalForm(raw, 128);
  Series slow_normal = NormalForm(Upsample(raw, 3), 128);
  auto a = engine->KnnQuery(normal, 5);
  auto b = engine->KnnQuery(slow_normal, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_NEAR(a[i].distance, b[i].distance, 1e-9);
  }
}

}  // namespace
}  // namespace humdex
