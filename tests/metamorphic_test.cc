// Metamorphic properties of the query engine: transformations of the corpus
// or query with a predictable effect on the answers.
#include <gtest/gtest.h>

#include <algorithm>

#include "gemini/query_engine.h"
#include "ts/dtw.h"
#include "ts/lower_bound.h"
#include "ts/normal_form.h"
#include "util/random.h"

namespace humdex {
namespace {

Series RandomWalk(Rng* rng, std::size_t n) {
  Series x(n);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v += rng->Gaussian();
    x[i] = v;
  }
  return x;
}

std::unique_ptr<DtwQueryEngine> MakeEngine(const std::vector<Series>& corpus) {
  QueryEngineOptions opts;
  auto engine = std::make_unique<DtwQueryEngine>(MakeNewPaaScheme(128, 8), opts);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    engine->Add(corpus[i], static_cast<std::int64_t>(i));
  }
  return engine;
}

TEST(MetamorphicTest, AddingFarAwaySeriesDoesNotChangeAnswers) {
  Rng rng(3);
  std::vector<Series> corpus;
  for (int i = 0; i < 150; ++i) corpus.push_back(RandomWalk(&rng, 128));
  auto base = MakeEngine(corpus);

  std::vector<Series> polluted = corpus;
  for (int i = 0; i < 150; ++i) {
    Series far = RandomWalk(&rng, 128);
    for (double& v : far) v += 1e5;  // far from every query below
    polluted.push_back(far);
  }
  auto engine2 = MakeEngine(polluted);

  for (int q = 0; q < 10; ++q) {
    Series query = RandomWalk(&rng, 128);
    auto a = base->RangeQuery(query, 10.0);
    auto b = engine2->RangeQuery(query, 10.0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_NEAR(a[i].distance, b[i].distance, 1e-9);
    }
  }
}

TEST(MetamorphicTest, InsertionOrderIrrelevantToAnswers) {
  Rng rng(5);
  std::vector<Series> corpus;
  for (int i = 0; i < 300; ++i) corpus.push_back(RandomWalk(&rng, 128));

  QueryEngineOptions opts;
  DtwQueryEngine forward(MakeNewPaaScheme(128, 8), opts);
  DtwQueryEngine backward(MakeNewPaaScheme(128, 8), opts);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    forward.Add(corpus[i], static_cast<std::int64_t>(i));
  }
  for (std::size_t i = corpus.size(); i-- > 0;) {
    backward.Add(corpus[i], static_cast<std::int64_t>(i));
  }
  for (int q = 0; q < 10; ++q) {
    Series query = RandomWalk(&rng, 128);
    auto a = forward.RangeQuery(query, 9.0);
    auto b = backward.RangeQuery(query, 9.0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
  }
}

TEST(MetamorphicTest, GrowingRadiusGrowsResultSetMonotonically) {
  Rng rng(7);
  std::vector<Series> corpus;
  for (int i = 0; i < 200; ++i) corpus.push_back(RandomWalk(&rng, 128));
  auto engine = MakeEngine(corpus);
  for (int q = 0; q < 5; ++q) {
    Series query = RandomWalk(&rng, 128);
    std::size_t prev = 0;
    for (double eps : {2.0, 5.0, 8.0, 12.0, 20.0}) {
      std::size_t count = engine->RangeQuery(query, eps).size();
      EXPECT_GE(count, prev);
      prev = count;
    }
  }
}

TEST(MetamorphicTest, QueryingAStoredSeriesReturnsItFirst) {
  Rng rng(9);
  std::vector<Series> corpus;
  for (int i = 0; i < 200; ++i) corpus.push_back(RandomWalk(&rng, 128));
  auto engine = MakeEngine(corpus);
  for (std::int64_t id : {0, 57, 199}) {
    auto nn = engine->KnnQuery(corpus[static_cast<std::size_t>(id)], 1);
    ASSERT_EQ(nn.size(), 1u);
    EXPECT_DOUBLE_EQ(nn[0].distance, 0.0);
  }
}

TEST(MetamorphicTest, BulkAndIncrementalBuildsAnswerIdentically) {
  Rng rng(11);
  std::vector<Series> corpus;
  for (int i = 0; i < 500; ++i) corpus.push_back(RandomWalk(&rng, 128));

  QueryEngineOptions opts;
  DtwQueryEngine incremental(MakeNewPaaScheme(128, 8), opts);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    incremental.Add(corpus[i], static_cast<std::int64_t>(i));
  }
  DtwQueryEngine bulk(MakeNewPaaScheme(128, 8), opts);
  bulk.AddAll(corpus);

  for (int q = 0; q < 10; ++q) {
    Series query = RandomWalk(&rng, 128);
    auto a = incremental.RangeQuery(query, 9.0);
    auto b = bulk.RangeQuery(query, 9.0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_NEAR(a[i].distance, b[i].distance, 1e-9);
    }
    auto ka = incremental.KnnQuery(query, 7);
    auto kb = bulk.KnnQuery(query, 7);
    ASSERT_EQ(ka.size(), kb.size());
    for (std::size_t i = 0; i < ka.size(); ++i) {
      EXPECT_NEAR(ka[i].distance, kb[i].distance, 1e-9);
    }
  }
}

// The LB_Triangle ingredients are built purely from pointwise differences,
// so a common value shift of all three series (query, reference, candidate)
// must leave the bound unchanged — the same transform
// AddingFarAwaySeriesDoesNotChangeAnswers applies to whole corpora.
TEST(MetamorphicTest, TriangleBoundInvariantUnderValueShift) {
  Rng rng(17);
  const std::size_t k = 6;
  for (int trial = 0; trial < 20; ++trial) {
    Series x = RandomWalk(&rng, 128);
    Series r = RandomWalk(&rng, 128);
    Series y = RandomWalk(&rng, 128);
    double base = LbTriangle(x, BuildEnvelope(r, k), BuildEnvelope(y, k));
    const double shift = 7.25;
    for (Series* s : {&x, &r, &y}) {
      for (double& v : *s) v += shift;
    }
    double shifted = LbTriangle(x, BuildEnvelope(r, k), BuildEnvelope(y, k));
    EXPECT_NEAR(shifted, base, 1e-6 * (1.0 + base));
  }
}

// Reversing all three series in time permutes every pointwise term of the
// bound (envelopes of a reversed series are the reversed envelopes), so the
// bound is preserved up to summation order.
TEST(MetamorphicTest, TriangleBoundInvariantUnderTimeReversal) {
  Rng rng(19);
  const std::size_t k = 6;
  for (int trial = 0; trial < 20; ++trial) {
    Series x = RandomWalk(&rng, 128);
    Series r = RandomWalk(&rng, 128);
    Series y = RandomWalk(&rng, 128);
    double base = LbTriangle(x, BuildEnvelope(r, k), BuildEnvelope(y, k));
    for (Series* s : {&x, &r, &y}) std::reverse(s->begin(), s->end());
    double reversed = LbTriangle(x, BuildEnvelope(r, k), BuildEnvelope(y, k));
    EXPECT_NEAR(reversed, base, 1e-9 * (1.0 + base));
  }
}

// The reference set is a pure accelerator: answers must not depend on which
// references the engine prunes with, or whether it has any at all.
TEST(MetamorphicTest, ReferenceSetIrrelevantToAnswers) {
  Rng rng(23);
  std::vector<Series> corpus;
  for (int i = 0; i < 200; ++i) corpus.push_back(RandomWalk(&rng, 128));

  auto make = [&](std::size_t references) {
    QueryEngineOptions opts;
    opts.cascade.triangle_references = references;
    auto engine =
        std::make_unique<DtwQueryEngine>(MakeNewPaaScheme(128, 8), opts);
    engine->AddAll(corpus);
    return engine;
  };
  auto none = make(0);
  auto few = make(2);
  auto many = make(16);

  for (int q = 0; q < 8; ++q) {
    Series query = RandomWalk(&rng, 128);
    auto a = none->RangeQuery(query, 9.0);
    for (auto* engine : {few.get(), many.get()}) {
      auto b = engine->RangeQuery(query, 9.0);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].distance, b[i].distance);
      }
      auto ka = none->KnnQueryOptimal(query, 5);
      auto kb = engine->KnnQueryOptimal(query, 5);
      ASSERT_EQ(ka.size(), kb.size());
      for (std::size_t i = 0; i < ka.size(); ++i) {
        EXPECT_EQ(ka[i].id, kb[i].id);
        EXPECT_EQ(ka[i].distance, kb[i].distance);
      }
    }
  }
}

TEST(MetamorphicTest, UniformTempoChangeOfQueryIsAbsorbedByNormalForm) {
  Rng rng(13);
  std::vector<Series> corpus;
  for (int i = 0; i < 100; ++i) corpus.push_back(RandomWalk(&rng, 128));
  auto engine = MakeEngine(corpus);

  Series raw = RandomWalk(&rng, 40);
  Series normal = NormalForm(raw, 128);
  Series slow_normal = NormalForm(Upsample(raw, 3), 128);
  auto a = engine->KnnQuery(normal, 5);
  auto b = engine->KnnQuery(slow_normal, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_NEAR(a[i].distance, b[i].distance, 1e-9);
  }
}

}  // namespace
}  // namespace humdex
