// Equivalence properties of the dispatched SIMD kernels (ts/kernels.h): every
// variant the binary carries must produce BIT-IDENTICAL output to the scalar
// reference on the same inputs — the whole-query exactness argument of
// DESIGN.md §10 rests on this. Lengths sweep 1..1024 so every lane remainder
// of the 2-wide (SSE2) and 4-wide (AVX2) main loops is hit; inputs include
// denormals and ±infinity, and abandoning thresholds exercise every
// checkpoint path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "ts/dtw.h"
#include "ts/envelope.h"
#include "ts/codec.h"
#include "ts/kernels.h"
#include "ts/lower_bound.h"
#include "util/random.h"

namespace humdex {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Bitwise comparison: NaN == NaN, +0 != -0. The kernels are deterministic
// functions of their input bits, so nothing weaker is acceptable.
::testing::AssertionResult BitEqual(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "bit mismatch: " << a << " vs " << b;
}

Series RandomSeries(Rng* rng, std::size_t n) {
  Series x(n);
  for (double& v : x) v = rng->Uniform(-4.0, 4.0);
  return x;
}

// A box around a random center, occasionally degenerate (lo == hi).
void RandomBox(Rng* rng, std::size_t n, Series* lo, Series* hi) {
  lo->resize(n);
  hi->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double c = rng->Uniform(-4.0, 4.0);
    double w = rng->Bernoulli(0.1) ? 0.0 : rng->Uniform(0.0, 1.0);
    (*lo)[i] = c - w;
    (*hi)[i] = c + w;
  }
}

// Sprinkle special values: denormals, ±inf, exact zeros.
void AddSpecials(Rng* rng, Series* x) {
  for (double& v : *x) {
    if (rng->Bernoulli(0.05)) v = 4.9e-324;   // smallest denormal
    if (rng->Bernoulli(0.03)) v = -2.3e-310;  // denormal
    if (rng->Bernoulli(0.02)) v = 0.0;
    if (rng->Bernoulli(0.02)) v = kInf;
    if (rng->Bernoulli(0.02)) v = -kInf;
  }
}

std::vector<SimdLevel> VariantLevels() {
  std::vector<SimdLevel> out;
  for (SimdLevel level : {SimdLevel::kSse2, SimdLevel::kAvx2}) {
    if (kernels::KernelTableFor(level) != nullptr) out.push_back(level);
  }
  return out;
}

class KernelVariantTest : public ::testing::TestWithParam<SimdLevel> {
 protected:
  void SetUp() override {
    table_ = kernels::KernelTableFor(GetParam());
    if (table_ == nullptr) {
      GTEST_SKIP() << "tier " << SimdLevelName(GetParam())
                   << " not available in this binary/CPU";
    }
  }
  const kernels::KernelTable* table_ = nullptr;
};

TEST_P(KernelVariantTest, SqDistToBoxMatchesScalarBitForBitAllLengths) {
  const kernels::KernelTable& scalar = kernels::ScalarKernels();
  Rng rng(42);
  for (std::size_t n = 1; n <= 1024; n = n < 140 ? n + 1 : n + 97) {
    Series x = RandomSeries(&rng, n), lo, hi;
    RandomBox(&rng, n, &lo, &hi);
    double ref = scalar.sq_dist_to_box(x.data(), lo.data(), hi.data(), n, kInf);
    double got = table_->sq_dist_to_box(x.data(), lo.data(), hi.data(), n, kInf);
    EXPECT_TRUE(BitEqual(ref, got)) << "n=" << n;
    // The aliased MINDIST entry computes the same math.
    EXPECT_TRUE(BitEqual(
        ref, table_->mindist_sq_to_rect(x.data(), lo.data(), hi.data(), n, kInf)))
        << "n=" << n;
  }
}

TEST_P(KernelVariantTest, SqDistToBoxMatchesScalarOnSpecialValues) {
  const kernels::KernelTable& scalar = kernels::ScalarKernels();
  Rng rng(43);
  for (int trial = 0; trial < 200; ++trial) {
    std::size_t n = 1 + rng.NextBounded(300);
    Series x = RandomSeries(&rng, n), lo, hi;
    RandomBox(&rng, n, &lo, &hi);
    AddSpecials(&rng, &x);
    double ref = scalar.sq_dist_to_box(x.data(), lo.data(), hi.data(), n, kInf);
    double got = table_->sq_dist_to_box(x.data(), lo.data(), hi.data(), n, kInf);
    EXPECT_TRUE(BitEqual(ref, got)) << "trial=" << trial << " n=" << n;
  }
}

TEST_P(KernelVariantTest, SqDistToBoxAbandonMatchesScalarAndStaysLowerBound) {
  const kernels::KernelTable& scalar = kernels::ScalarKernels();
  Rng rng(44);
  for (int trial = 0; trial < 300; ++trial) {
    std::size_t n = 1 + rng.NextBounded(400);
    Series x = RandomSeries(&rng, n), lo, hi;
    RandomBox(&rng, n, &lo, &hi);
    double full = scalar.sq_dist_to_box(x.data(), lo.data(), hi.data(), n, kInf);
    // Thresholds from 0 (abandon at the first checkpoint) through the full
    // sum (never abandon), including exactly the full sum.
    for (double frac : {0.0, 0.1, 0.5, 0.9, 1.0, 2.0}) {
      double abandon = full * frac;
      double ref =
          scalar.sq_dist_to_box(x.data(), lo.data(), hi.data(), n, abandon);
      double got =
          table_->sq_dist_to_box(x.data(), lo.data(), hi.data(), n, abandon);
      EXPECT_TRUE(BitEqual(ref, got))
          << "trial=" << trial << " n=" << n << " frac=" << frac;
      // Partial or not, the return is a lower bound of the full sum, and a
      // return <= abandon implies it IS the full sum.
      if (!std::isnan(ref)) {
        EXPECT_LE(ref, full);
        if (ref <= abandon) EXPECT_TRUE(BitEqual(ref, full));
      }
    }
  }
}

TEST_P(KernelVariantTest, LdtwRowUpdateMatchesScalarBitForBit) {
  const kernels::KernelTable& scalar = kernels::ScalarKernels();
  Rng rng(45);
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t m = 1 + rng.NextBounded(160);
    const std::size_t jlo = rng.NextBounded(static_cast<std::uint32_t>(m));
    const std::size_t jhi = jlo + rng.NextBounded(static_cast<std::uint32_t>(m - jlo));
    Series y = RandomSeries(&rng, m);
    const double xi = rng.Uniform(-4.0, 4.0);
    // DP rows with the one-slot front pad the contract requires; some prev
    // cells are infinity (outside the previous row's band).
    std::vector<double> prev_buf(m + 1, kInf), cur_ref(m + 1, kInf),
        cur_got(m + 1, kInf);
    for (std::size_t j = 0; j <= m; ++j) {
      if (!rng.Bernoulli(0.2)) prev_buf[j] = rng.Uniform(0.0, 50.0);
    }
    prev_buf[0] = kInf;  // the pad itself is always infinity
    const std::size_t width = jhi - jlo + 1;
    std::vector<double> cost_a(width), t1_a(width), cost_b(width), t1_b(width);
    double ref = scalar.ldtw_row_update(xi, y.data(), prev_buf.data() + 1,
                                        cur_ref.data() + 1, jlo, jhi,
                                        cost_a.data(), t1_a.data());
    double got = table_->ldtw_row_update(xi, y.data(), prev_buf.data() + 1,
                                         cur_got.data() + 1, jlo, jhi,
                                         cost_b.data(), t1_b.data());
    EXPECT_TRUE(BitEqual(ref, got)) << "trial=" << trial;
    for (std::size_t j = jlo; j <= jhi; ++j) {
      EXPECT_TRUE(BitEqual(cur_ref[j + 1], cur_got[j + 1]))
          << "trial=" << trial << " j=" << j;
    }
  }
}

TEST_P(KernelVariantTest, DeltaDecodeMatchesScalarBitForBitAllLengths) {
  const kernels::KernelTable& scalar = kernels::ScalarKernels();
  Rng rng(48);
  for (std::size_t n = 1; n <= 1024; n = n < 140 ? n + 1 : n + 97) {
    std::vector<std::int64_t> m(n);
    for (std::int64_t& v : m) {
      // Stay within the encoder's |m[i]| <= 2^50 bound that makes the
      // int64 -> double conversion exact in every variant.
      v = static_cast<std::int64_t>(rng.NextBounded(1u << 20)) - (1 << 19);
      if (rng.Bernoulli(0.05)) v <<= 30;
    }
    const double v0 = rng.Uniform(-100.0, 100.0);
    const double scale = std::ldexp(1.0, -20);
    std::vector<double> ref(n), got(n);
    scalar.delta_decode(m.data(), n, v0, scale, ref.data());
    table_->delta_decode(m.data(), n, v0, scale, got.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(BitEqual(ref[i], got[i])) << "n=" << n << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, KernelVariantTest,
                         ::testing::Values(SimdLevel::kSse2, SimdLevel::kAvx2),
                         [](const auto& info) {
                           return std::string(SimdLevelName(info.param));
                         });

// The kernelized entry points (envelope distance, banded DTW) agree with
// definitional re-computation regardless of which table is active.
TEST(KernelDispatchTest, ActiveTableMatchesScalarThroughPublicApis) {
  Rng rng(46);
  for (SimdLevel level : VariantLevels()) {
    kernels::ScopedKernelOverride scalar_first(SimdLevel::kScalar);
    Series x = RandomSeries(&rng, 96), y = RandomSeries(&rng, 96);
    Envelope env = BuildEnvelope(y, 5);
    double d_env = SquaredDistanceToEnvelope(x, env);
    double d_dtw = SquaredLdtwDistance(x, y, 5);
    {
      kernels::ScopedKernelOverride with_simd(level);
      EXPECT_TRUE(BitEqual(d_env, SquaredDistanceToEnvelope(x, env)));
      EXPECT_TRUE(BitEqual(d_dtw, SquaredLdtwDistance(x, y, 5)));
    }
  }
}

TEST(KernelDispatchTest, ForceScalarEnvVariableIsRespectedInTableFor) {
  // ActiveSimdLevel() caches the env lookup, so this only checks the level
  // enumeration helpers stay consistent; the end-to-end env-var behavior is
  // exercised by scripts/check.sh running this binary under
  // HUMDEX_FORCE_SCALAR=1.
  EXPECT_NE(kernels::KernelTableFor(SimdLevel::kScalar), nullptr);
  EXPECT_STREQ(kernels::ScalarKernels().name, "scalar");
  if (ForcedScalar()) {
    EXPECT_EQ(&kernels::ActiveKernels(), &kernels::ScalarKernels());
  }
}

// LB_Improved is sandwiched between LB_Keogh and the exact banded distance,
// which is exactly why it earns its place in the cascade.
TEST(LbImprovedTest, SandwichedBetweenKeoghAndExactDtw) {
  Rng rng(47);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 8 + rng.NextBounded(120);
    const std::size_t k = rng.NextBounded(8);
    Series x = RandomSeries(&rng, n), y = RandomSeries(&rng, n);
    double keogh = LbKeogh(x, y, k);
    double improved = LbImproved(x, y, k);
    double exact = LdtwDistance(x, y, k);
    EXPECT_LE(keogh, improved + 1e-9) << "trial=" << trial;
    EXPECT_LE(improved, exact + 1e-9) << "trial=" << trial;
  }
}

// The two-pass decomposition used by the cascade (part1 carried from the
// Keogh stage, abandoning second pass) reproduces the reference bound.
TEST(LbImprovedTest, SecondPassDecompositionMatchesReference) {
  Rng rng(48);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 8 + rng.NextBounded(120);
    const std::size_t k = rng.NextBounded(8);
    Series x = RandomSeries(&rng, n), y = RandomSeries(&rng, n);
    Envelope env_y = BuildEnvelope(y, k);
    double part1 = SquaredDistanceToEnvelope(x, env_y);
    double part2 = SquaredLbImprovedSecondPass(x, y, env_y, k, kInf);
    double whole = SquaredLbImproved(x, y, env_y, k, kInf);
    EXPECT_TRUE(BitEqual(part1 + part2, whole)) << "trial=" << trial;
    EXPECT_NEAR(std::sqrt(whole), LbImproved(x, y, k), 1e-12);
  }
}

// The delta+bitpack series codec (ts/codec.h) that the v3 binary format
// persists pitch-like series with: losslessness is verified per series at
// encode time, and decode runs through the dispatched delta_decode kernel.
::testing::AssertionResult SeriesBitEqual(const Series& a, const Series& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto r = BitEqual(a[i], b[i]);
    if (!r) return r << " at index " << i;
  }
  return ::testing::AssertionSuccess();
}

Series PitchLikeSeries(Rng* rng, std::size_t n) {
  Series s(n);
  double v = 60.0;
  for (double& x : s) {
    v += (static_cast<double>(rng->NextBounded(9)) - 4.0) * 0.5;
    x = v;
  }
  return s;
}

TEST(CodecTest, PitchLikeSeriesRoundTripBitExactlyAndCompress) {
  Rng rng(49);
  for (std::size_t n : {1u, 2u, 3u, 64u, 128u, 1000u}) {
    Series s = PitchLikeSeries(&rng, n);
    std::string buf;
    std::size_t written = codec::EncodeSeries(s, &buf);
    EXPECT_EQ(written, buf.size());
    if (n >= 64) {
      EXPECT_LT(buf.size(), n * sizeof(double) / 2);  // at least 2x smaller
    }
    Series back;
    std::size_t pos = 0;
    ASSERT_TRUE(codec::DecodeSeries(buf, &pos, n, &back).ok()) << "n=" << n;
    EXPECT_EQ(pos, buf.size());
    EXPECT_TRUE(SeriesBitEqual(s, back)) << "n=" << n;
  }
}

TEST(CodecTest, UnpackableSeriesFallBackToRawAndStillRoundTrip) {
  // Values off the 2^-20 grid, huge ranges, specials: the encoder must fall
  // back to the raw block, and the round trip stays bit-exact regardless.
  Rng rng(50);
  Series s(37);
  for (double& v : s) v = rng.Uniform(-1e9, 1e9) * 1e-7;
  s[3] = 1e-300;                                      // denormal territory
  s[5] = std::numeric_limits<double>::quiet_NaN();    // raw preserves bits
  s[7] = kInf;
  std::string buf;
  codec::EncodeSeries(s, &buf);
  Series back;
  std::size_t pos = 0;
  ASSERT_TRUE(codec::DecodeSeries(buf, &pos, s.size(), &back).ok());
  EXPECT_TRUE(SeriesBitEqual(s, back));
}

TEST(CodecTest, DecodeIsBitIdenticalAcrossKernelTiers) {
  Rng rng(51);
  Series s = PitchLikeSeries(&rng, 512);
  std::string buf;
  codec::EncodeSeries(s, &buf);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 1u);  // packed mode

  Series scalar_out;
  {
    kernels::ScopedKernelOverride scalar(SimdLevel::kScalar);
    std::size_t pos = 0;
    ASSERT_TRUE(codec::DecodeSeries(buf, &pos, s.size(), &scalar_out).ok());
  }
  EXPECT_TRUE(SeriesBitEqual(s, scalar_out));
  for (SimdLevel level : VariantLevels()) {
    kernels::ScopedKernelOverride with_simd(level);
    Series out;
    std::size_t pos = 0;
    ASSERT_TRUE(codec::DecodeSeries(buf, &pos, s.size(), &out).ok());
    EXPECT_TRUE(SeriesBitEqual(scalar_out, out))
        << "tier " << SimdLevelName(level);
  }
}

TEST(CodecTest, TruncatedOrMalformedInputIsCorruptionNeverAbort) {
  Rng rng(52);
  Series s = PitchLikeSeries(&rng, 96);
  std::string buf;
  codec::EncodeSeries(s, &buf);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    Series out;
    std::size_t pos = 0;
    Status st = codec::DecodeSeries(buf.substr(0, len), &pos, s.size(), &out);
    EXPECT_EQ(st.code(), Status::Code::kCorruption) << "len=" << len;
  }
  // Unknown mode byte and an over-wide bit width are rejected.
  Series out;
  std::size_t pos = 0;
  EXPECT_FALSE(codec::DecodeSeries(std::string("\x07junk"), &pos, 2, &out).ok());
  std::string wide = buf;
  wide[1] = 60;  // bit width > 53
  pos = 0;
  EXPECT_FALSE(codec::DecodeSeries(wide, &pos, s.size(), &out).ok());
}

TEST(CodecTest, OutlierBecomesExceptionNotRawFallback) {
  // One full-precision value (the fermata-duration case: every generated
  // melody ends on one) must not force the whole series to 8 bytes/value.
  Rng rng(53);
  Series s = PitchLikeSeries(&rng, 128);
  s[77] = 2.0 + 0.123456789012345678;  // off every power-of-two grid
  std::string buf;
  codec::EncodeSeries(s, &buf);
  ASSERT_EQ(static_cast<unsigned char>(buf[0]), 2u);  // packed + exceptions
  EXPECT_LT(buf.size(), s.size() * sizeof(double) / 2);
  Series back;
  std::size_t pos = 0;
  ASSERT_TRUE(codec::DecodeSeries(buf, &pos, s.size(), &back).ok());
  EXPECT_EQ(pos, buf.size());
  EXPECT_TRUE(SeriesBitEqual(s, back));

  // A NaN outlier rides the same path and keeps its exact payload bits.
  s[12] = std::numeric_limits<double>::quiet_NaN();
  buf.clear();
  codec::EncodeSeries(s, &buf);
  ASSERT_EQ(static_cast<unsigned char>(buf[0]), 2u);
  Series back2;
  pos = 0;
  ASSERT_TRUE(codec::DecodeSeries(buf, &pos, s.size(), &back2).ok());
  EXPECT_TRUE(SeriesBitEqual(s, back2));
}

TEST(CodecTest, ExceptionModeSurvivesTruncationAndBadIndexes) {
  Rng rng(54);
  Series s = PitchLikeSeries(&rng, 64);
  s[10] = 1.0 / 3.0;
  s[40] = 2.0 / 7.0;
  std::string buf;
  codec::EncodeSeries(s, &buf);
  ASSERT_EQ(static_cast<unsigned char>(buf[0]), 2u);
  // Every strict prefix is corruption, never an abort or over-read.
  for (std::size_t len = 0; len < buf.size(); ++len) {
    Series out;
    std::size_t pos = 0;
    Status st = codec::DecodeSeries(buf.substr(0, len), &pos, s.size(), &out);
    EXPECT_EQ(st.code(), Status::Code::kCorruption) << "len=" << len;
  }
  // Exception indexes must be strictly ascending and in range.
  const std::size_t first_idx = buf.size() - 2 * 12;  // two (u32, double) pairs
  std::string swapped = buf;
  std::swap_ranges(swapped.begin() + static_cast<std::ptrdiff_t>(first_idx),
                   swapped.begin() + static_cast<std::ptrdiff_t>(first_idx + 12),
                   swapped.begin() + static_cast<std::ptrdiff_t>(first_idx + 12));
  Series out;
  std::size_t pos = 0;
  EXPECT_EQ(codec::DecodeSeries(swapped, &pos, s.size(), &out).code(),
            Status::Code::kCorruption);
  std::string oob = buf;
  const std::uint32_t big = 1u << 20;
  std::memcpy(&oob[first_idx], &big, sizeof big);
  pos = 0;
  EXPECT_EQ(codec::DecodeSeries(oob, &pos, s.size(), &out).code(),
            Status::Code::kCorruption);
}

TEST(CodecTest, ExceptionModeBitIdenticalAcrossKernelTiers) {
  Rng rng(55);
  Series s = PitchLikeSeries(&rng, 256);
  s[100] = 0.1;  // off-grid
  std::string buf;
  codec::EncodeSeries(s, &buf);
  ASSERT_EQ(static_cast<unsigned char>(buf[0]), 2u);
  Series scalar_out;
  {
    kernels::ScopedKernelOverride scalar(SimdLevel::kScalar);
    std::size_t pos = 0;
    ASSERT_TRUE(codec::DecodeSeries(buf, &pos, s.size(), &scalar_out).ok());
  }
  EXPECT_TRUE(SeriesBitEqual(s, scalar_out));
  for (SimdLevel level : VariantLevels()) {
    kernels::ScopedKernelOverride with_simd(level);
    Series out;
    std::size_t pos = 0;
    ASSERT_TRUE(codec::DecodeSeries(buf, &pos, s.size(), &out).ok());
    EXPECT_TRUE(SeriesBitEqual(scalar_out, out))
        << "tier " << SimdLevelName(level);
  }
}

}  // namespace
}  // namespace humdex
