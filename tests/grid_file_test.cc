#include <gtest/gtest.h>

#include <algorithm>

#include "index/grid_file.h"
#include "index/linear_scan.h"
#include "util/random.h"

namespace humdex {
namespace {

Series RandomPoint(Rng* rng, std::size_t dims, double scale = 10.0) {
  Series p(dims);
  for (double& v : p) v = rng->Uniform(-scale, scale);
  return p;
}

TEST(GridFileTest, EmptyQueries) {
  GridFile grid(2);
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.RangeQuery(Rect({0, 0}, {1, 1}), 1.0).empty());
  EXPECT_TRUE(grid.KnnQuery({0, 0}, 3).empty());
}

TEST(GridFileTest, SplitsUnderLoad) {
  Rng rng(5);
  GridFileOptions opt;
  opt.bucket_capacity = 16;
  GridFile grid(4, opt);
  for (std::int64_t id = 0; id < 2000; ++id) grid.Insert(RandomPoint(&rng, 4), id);
  EXPECT_GT(grid.CellCount(), 1u);
}

class GridFileAgreementTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GridFileAgreementTest, RangeQueryMatchesLinearScan) {
  const std::size_t dims = GetParam();
  Rng rng(100 + dims);
  GridFile grid(dims);
  LinearScanIndex scan(dims);
  for (std::int64_t id = 0; id < 3000; ++id) {
    Series p = RandomPoint(&rng, dims);
    grid.Insert(p, id);
    scan.Insert(p, id);
  }
  for (int q = 0; q < 40; ++q) {
    Series a = RandomPoint(&rng, dims), b = RandomPoint(&rng, dims);
    Series lo(dims), hi(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      lo[d] = std::min(a[d], b[d]);
      hi[d] = std::max(a[d], b[d]);
    }
    double radius = rng.Uniform(0.0, 4.0);
    auto g = grid.RangeQuery(Rect(lo, hi), radius);
    auto s = scan.RangeQuery(Rect(lo, hi), radius);
    std::sort(g.begin(), g.end());
    std::sort(s.begin(), s.end());
    EXPECT_EQ(g, s) << "dims=" << dims;
  }
}

TEST_P(GridFileAgreementTest, KnnMatchesLinearScan) {
  const std::size_t dims = GetParam();
  Rng rng(200 + dims);
  GridFile grid(dims);
  LinearScanIndex scan(dims);
  for (std::int64_t id = 0; id < 2000; ++id) {
    Series p = RandomPoint(&rng, dims);
    grid.Insert(p, id);
    scan.Insert(p, id);
  }
  for (int q = 0; q < 25; ++q) {
    Series query = RandomPoint(&rng, dims);
    for (std::size_t k : {1u, 4u, 10u}) {
      auto g = grid.KnnQuery(query, k);
      auto s = scan.KnnQuery(query, k);
      ASSERT_EQ(g.size(), s.size());
      for (std::size_t i = 0; i < g.size(); ++i) {
        EXPECT_NEAR(g[i].distance, s[i].distance, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, GridFileAgreementTest, ::testing::Values(1, 3, 8));

TEST(GridFileTest, PageAccessesPruneDistantCells) {
  // Two clusters far apart: a tight query near one should not touch every
  // occupied bucket.
  Rng rng(7);
  GridFileOptions opt;
  opt.bucket_capacity = 32;
  GridFile grid(3, opt);
  for (std::int64_t id = 0; id < 4000; ++id) {
    Series p = RandomPoint(&rng, 3, 1.0);
    if (id % 2 == 1) {
      for (double& v : p) v += 500.0;
    }
    grid.Insert(p, id);
  }
  IndexStats near_stats, all_stats;
  grid.RangeQuery(Rect::FromPoint(Series(3, 0.0)), 1.0, &near_stats);
  grid.RangeQuery(Rect({-600, -600, -600}, {600, 600, 600}), 0.0, &all_stats);
  EXPECT_LT(near_stats.page_accesses, all_stats.page_accesses);
}

TEST(GridFileTest, KnnOnDuplicatePoints) {
  GridFile grid(2);
  for (std::int64_t id = 0; id < 50; ++id) grid.Insert({2.0, 2.0}, id);
  auto nn = grid.KnnQuery({2.0, 2.0}, 5);
  ASSERT_EQ(nn.size(), 5u);
  for (const Neighbor& n : nn) EXPECT_DOUBLE_EQ(n.distance, 0.0);
}

TEST(LinearScanTest, PageAccountingCeilDivision) {
  LinearScanIndex scan(2, /*points_per_page=*/10);
  for (std::int64_t id = 0; id < 25; ++id) scan.Insert({0.0, 0.0}, id);
  IndexStats stats;
  scan.RangeQuery(Rect({0, 0}, {1, 1}), 1.0, &stats);
  EXPECT_EQ(stats.page_accesses, 3u);
}

}  // namespace
}  // namespace humdex
