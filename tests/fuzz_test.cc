// Deterministic fuzzing of every parser and of the index under adversarial
// workloads: random garbage must produce clean Status errors (or parse), and
// the structures must never corrupt or crash.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "audio/wav_io.h"
#include "index/rstar_tree.h"
#include "music/melody_io.h"
#include "music/song_generator.h"
#include "qbh/qbh_system.h"
#include "qbh/storage.h"
#include "qbh/wal.h"
#include "serve/protocol.h"
#include "util/crc32c.h"
#include "util/env.h"
#include "util/random.h"

namespace humdex {
namespace {

std::string RandomBytes(Rng* rng, std::size_t len) {
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng->NextBounded(256)));
  }
  return s;
}

std::string RandomTextLines(Rng* rng, std::size_t lines) {
  static const char* kTokens[] = {"melody", "end",   "60",   "1.0",  "abc",
                                  "-5",     "nan",   "inf",  "#x",   "",
                                  "melody a", "1e308", "0.5", "60 1", "60 1 2"};
  std::string s;
  for (std::size_t i = 0; i < lines; ++i) {
    int parts = rng->UniformInt(0, 3);
    for (int p = 0; p < parts; ++p) {
      if (p > 0) s.push_back(' ');
      s += kTokens[rng->NextBounded(15)];
    }
    s.push_back('\n');
  }
  return s;
}

TEST(FuzzTest, ParseMelodiesNeverCrashesOnGarbage) {
  Rng rng(1);
  std::vector<Melody> out;
  for (int trial = 0; trial < 500; ++trial) {
    std::string text = RandomBytes(&rng, static_cast<std::size_t>(
                                             rng.UniformInt(0, 500)));
    Status st = ParseMelodies(text, &out);  // must return, never abort
    if (st.ok()) {
      for (const Melody& m : out) EXPECT_FALSE(m.empty());
    }
  }
}

TEST(FuzzTest, ParseMelodiesOnStructuredGarbage) {
  Rng rng(2);
  std::vector<Melody> out;
  int ok_count = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    std::string text = RandomTextLines(&rng, static_cast<std::size_t>(
                                                 rng.UniformInt(0, 20)));
    if (ParseMelodies(text, &out).ok()) {
      ++ok_count;
      // Whatever parses must re-serialize and re-parse identically.
      std::vector<Melody> again;
      EXPECT_TRUE(ParseMelodies(SerializeMelodies(out), &again).ok());
      EXPECT_EQ(again.size(), out.size());
    }
  }
  // Structured garbage should occasionally parse (empty corpus at least).
  EXPECT_GT(ok_count, 0);
}

TEST(FuzzTest, DecodeWavNeverCrashesOnGarbage) {
  Rng rng(3);
  WavData out;
  for (int trial = 0; trial < 500; ++trial) {
    std::string bytes = RandomBytes(&rng, static_cast<std::size_t>(
                                              rng.UniformInt(0, 300)));
    DecodeWav(bytes, &out);  // Status either way; no crash
  }
}

TEST(FuzzTest, DecodeWavOnMutatedValidFiles) {
  Rng rng(4);
  Series samples(200, 0.25);
  std::string good = EncodeWav(samples, 8000);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = good;
    int flips = rng.UniformInt(1, 8);
    for (int f = 0; f < flips; ++f) {
      std::size_t pos = rng.NextBounded(static_cast<std::uint32_t>(mutated.size()));
      mutated[pos] = static_cast<char>(rng.NextBounded(256));
    }
    WavData out;
    Status st = DecodeWav(mutated, &out);
    if (st.ok()) {
      // If it still decodes, the payload must be bounded.
      for (double v : out.samples) {
        EXPECT_GE(v, -1.001);
        EXPECT_LE(v, 1.001);
      }
    }
  }
}

TEST(FuzzTest, ParseQbhDatabaseNeverCrashes) {
  Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = "humdex-db v1\n" +
                       RandomTextLines(&rng, static_cast<std::size_t>(
                                                 rng.UniformInt(0, 15)));
    ParseQbhDatabase(text);  // Result either way; no crash
  }
}

std::string ValidV2Database() {
  SongGenerator gen(21);
  QbhSystem system;
  for (Melody& m : gen.GeneratePhrases(4)) system.AddMelody(std::move(m));
  system.Build();
  return SerializeQbhDatabase(system);
}

TEST(FuzzTest, ParseQbhDatabaseV2OnMutatedValidFiles) {
  Rng rng(6);
  const std::string good = ValidV2Database();
  ASSERT_TRUE(ParseQbhDatabase(good).ok());
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = good;
    int edits = rng.UniformInt(1, 6);
    for (int e = 0; e < edits; ++e) {
      std::size_t pos =
          rng.NextBounded(static_cast<std::uint32_t>(mutated.size()));
      switch (rng.NextBounded(3)) {
        case 0:  // byte replacement
          mutated[pos] = static_cast<char>(rng.NextBounded(256));
          break;
        case 1:  // truncation
          mutated.resize(pos);
          break;
        default:  // garbage insertion
          mutated.insert(pos, RandomBytes(&rng, 1 + rng.NextBounded(8)));
          break;
      }
      if (mutated.empty()) break;
    }
    if (mutated == good) continue;
    // Must never crash; a mutated checksummed file that still parses is a
    // (vanishingly unlikely) CRC collision, so just require no crash here and
    // leave single-edit guarantees to corruption_test.
    ParseQbhDatabase(mutated);
  }
}

TEST(FuzzTest, SalvageNeverCrashesAndKeepsItsPromises) {
  Rng rng(7);
  const std::string good = ValidV2Database();
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    if (trial % 3 == 0) {
      text = "humdex-db v2\n" +
             RandomTextLines(&rng,
                             static_cast<std::size_t>(rng.UniformInt(0, 15)));
    } else {
      text = good;
      int edits = rng.UniformInt(1, 10);
      for (int e = 0; e < edits && !text.empty(); ++e) {
        std::size_t pos =
            rng.NextBounded(static_cast<std::uint32_t>(text.size()));
        if (rng.NextBounded(4) == 0) {
          text.resize(pos);
        } else {
          text[pos] = static_cast<char>(rng.NextBounded(256));
        }
      }
    }
    SalvageReport report;
    Result<QbhSystem> r = ParseQbhDatabaseSalvage(text, &report);
    if (r.ok()) {
      // A successful salvage must hand back a usable, non-empty system whose
      // size matches the report.
      EXPECT_TRUE(r.value().built());
      EXPECT_GT(r.value().size(), 0u);
      EXPECT_EQ(r.value().size(), report.melodies_loaded);
    }
  }
}

// Re-stamp a v2 body with a valid trailer so the parser reaches the pivot
// block instead of stopping at the checksum.
std::string WithFreshCrc(std::string body) {
  std::size_t tpos = body.rfind("\ncrc32c ");
  if (tpos != std::string::npos) body.resize(tpos + 1);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "crc32c %08x\n", Crc32c(body));
  return body + buf;
}

// Corrupt pivot blocks behind a VALID checksum (the adversarial case: CRC
// passes, content lies) must fail the strict load with a clean Status —
// never a CHECK-abort — and salvage must recover the melodies by dropping
// the pivot block.
TEST(FuzzTest, CorruptPivotBlocksFailWithStatusNeverAbort) {
  const std::string good = ValidV2Database();
  ASSERT_NE(good.find("option pivots"), std::string::npos);

  auto replace_first = [](std::string text, const std::string& from,
                          const std::string& to) {
    std::size_t pos = text.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    if (pos != std::string::npos) text.replace(pos, from.size(), to);
    return text;
  };

  std::vector<std::string> corrupt = {
      // Count disagrees with the number of pivot lines.
      replace_first(good, "option pivots 4", "option pivots 3"),
      replace_first(good, "option pivots 4", "option pivots 64"),
      // Count missing entirely but pivot lines present.
      replace_first(good, "option pivots 4\n", ""),
      // Absurd counts.
      replace_first(good, "option pivots 4", "option pivots 0"),
      replace_first(good, "option pivots 4", "option pivots 65"),
      replace_first(good, "option pivots 4", "option pivots 18446744073709551616"),
      replace_first(good, "option pivots 4", "option pivots -1"),
      replace_first(good, "option pivots 4", "option pivots x"),
      // Non-finite and malformed values inside a pivot line.
      replace_first(good, "pivot ", "pivot nan "),
      replace_first(good, "pivot ", "pivot inf "),
      replace_first(good, "pivot ", "pivot zzz "),
      // A pivot line of the wrong length (extra value -> != normal_len).
      replace_first(good, "pivot ", "pivot 0.5 "),
      // An empty pivot line.
      replace_first(good, "pivot ", "pivot \npivot "),
  };
  for (std::size_t i = 0; i < corrupt.size(); ++i) {
    std::string text = WithFreshCrc(corrupt[i]);
    Result<QbhSystem> r = ParseQbhDatabase(text);
    EXPECT_FALSE(r.ok()) << "case " << i;

    // Salvage drops the bad block but keeps the corpus; triangle pruning
    // stays exact because Build() re-selects references.
    SalvageReport report;
    Result<QbhSystem> s = ParseQbhDatabaseSalvage(text, &report);
    ASSERT_TRUE(s.ok()) << "case " << i << ": " << s.status().ToString();
    EXPECT_TRUE(report.crc_ok) << "case " << i;
    EXPECT_EQ(s.value().size(), 4u) << "case " << i;
  }
}

// Random garbage interleaved into the pivot block region: strict parse may
// reject, salvage must still produce a usable system or a clean error.
TEST(FuzzTest, FuzzedPivotBlocksNeverCrash) {
  Rng rng(11);
  const std::string good = ValidV2Database();
  const std::size_t block = good.find("option pivots");
  ASSERT_NE(block, std::string::npos);
  static const char* kPivotTokens[] = {
      "pivot",          "pivot 1 2 3", "pivot nan",     "option pivots 2",
      "option pivots",  "pivot -1e308", "pivot 0",      "pivotx 1",
      "option pivots 999999999999999999999999", "pivot inf inf"};
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = good;
    int edits = rng.UniformInt(1, 5);
    for (int e = 0; e < edits; ++e) {
      std::string line = kPivotTokens[rng.NextBounded(10)];
      line.push_back('\n');
      // Insert at a random line boundary at or after the pivot block start.
      std::size_t pos = block + rng.NextBounded(static_cast<std::uint32_t>(
                                    good.size() - block));
      pos = text.find('\n', pos);
      if (pos == std::string::npos) break;
      text.insert(pos + 1, line);
    }
    ParseQbhDatabase(WithFreshCrc(text));  // any Status; no crash
    SalvageReport report;
    Result<QbhSystem> s = ParseQbhDatabaseSalvage(WithFreshCrc(text), &report);
    if (s.ok()) {
      EXPECT_TRUE(s.value().built());
      EXPECT_EQ(s.value().size(), report.melodies_loaded);
    }
  }
}

TEST(FuzzTest, WalParseRecordsNeverCrashesOnGarbage) {
  Rng rng(31);
  WalReadResult rr;
  for (int trial = 0; trial < 800; ++trial) {
    std::string bytes = RandomBytes(
        &rng, static_cast<std::size_t>(rng.UniformInt(0, 400)));
    WriteAheadLog::ParseRecords(bytes, &rr);  // must return, never abort
    EXPECT_LE(rr.valid_bytes, bytes.size());
    EXPECT_EQ(rr.valid_bytes + rr.dropped_bytes, bytes.size());
  }
}

TEST(FuzzTest, WalScanOnMutatedValidLogs) {
  // Truncations and bit flips of a well-formed log: the scan must keep every
  // record before the damage, drop everything at or after it, and never
  // return a payload that was not appended.
  Rng rng(32);
  std::vector<std::string> payloads = {"insert 0\nmelody a\n60 1\nend\n",
                                       "remove 0\n", "", "short",
                                       std::string(300, 'x')};
  std::string good;
  for (const std::string& p : payloads) good += WriteAheadLog::FrameRecord(p);
  for (int trial = 0; trial < 800; ++trial) {
    std::string mutated = good;
    if (trial % 2 == 0) {
      mutated.resize(rng.NextBounded(
          static_cast<std::uint32_t>(mutated.size()) + 1));  // torn tail
    } else {
      std::size_t pos =
          rng.NextBounded(static_cast<std::uint32_t>(mutated.size()));
      mutated[pos] ^= static_cast<char>(1 + rng.NextBounded(255));  // bit flip
    }
    WalReadResult rr;
    WriteAheadLog::ParseRecords(mutated, &rr);
    ASSERT_LE(rr.payloads.size(), payloads.size());
    for (std::size_t i = 0; i < rr.payloads.size(); ++i) {
      // A surviving record is a *prefix* run: record i is exactly payload i.
      EXPECT_EQ(rr.payloads[i], payloads[i]);
    }
    if (mutated.size() < good.size() || mutated != good) {
      EXPECT_LE(rr.valid_bytes, mutated.size());
    }
  }
}

TEST(FuzzTest, DecodeWalMutationNeverCrashesOnGarbage) {
  Rng rng(33);
  WalMutation out;
  for (int trial = 0; trial < 800; ++trial) {
    std::string payload;
    if (trial % 3 == 0) {
      payload = (rng.NextBounded(2) ? "insert " : "remove ") +
                RandomTextLines(&rng,
                                static_cast<std::size_t>(rng.UniformInt(0, 6)));
    } else {
      payload = RandomBytes(
          &rng, static_cast<std::size_t>(rng.UniformInt(0, 200)));
    }
    Status st = DecodeWalMutation(payload, &out);  // Status either way
    if (st.ok() && out.kind == WalMutation::Kind::kInsert) {
      EXPECT_FALSE(out.melody.empty());
      EXPECT_GE(out.id, 0);
    }
  }
}

TEST(FuzzTest, RecoveryNeverCrashesOnFuzzedWalFiles) {
  // End to end: a valid checkpoint plus a fuzzed log file. Open() must
  // either recover a working system (never replaying a corrupt record) or
  // fail with a clean Status — and the checkpointed melodies survive intact.
  Rng rng(34);
  Env* env = Env::Default();
  const std::string path = ::testing::TempDir() + "fuzz_recovery.db";
  const std::string wal_path = QbhSystem::WalPathFor(path);
  {
    SongGenerator gen(35);
    QbhSystem system;
    for (Melody& m : gen.GeneratePhrases(5)) system.AddMelody(std::move(m));
    system.Build();
    ASSERT_TRUE(SaveQbhDatabase(path, system, env).ok());
  }
  WalMutation valid;
  valid.kind = WalMutation::Kind::kInsert;
  valid.id = 5;
  valid.melody.name = "valid tail";
  valid.melody.notes = {{60, 1}, {64, 1}, {67, 2}};
  const std::string valid_frame =
      WriteAheadLog::FrameRecord(EncodeWalMutation(valid));

  for (int trial = 0; trial < 60; ++trial) {
    std::string log_bytes;
    switch (trial % 4) {
      case 0:  // pure garbage
        log_bytes = RandomBytes(
            &rng, static_cast<std::size_t>(rng.UniformInt(0, 300)));
        break;
      case 1:  // valid record + torn copy of another
        log_bytes = valid_frame +
                    valid_frame.substr(0, rng.NextBounded(static_cast<
                                              std::uint32_t>(valid_frame.size())));
        break;
      case 2: {  // valid record with one flipped bit
        log_bytes = valid_frame;
        std::size_t pos =
            rng.NextBounded(static_cast<std::uint32_t>(log_bytes.size()));
        log_bytes[pos] ^= 0x20;
        break;
      }
      default:  // well-framed garbage payloads
        log_bytes = WriteAheadLog::FrameRecord(RandomBytes(
            &rng, static_cast<std::size_t>(rng.UniformInt(0, 80))));
        break;
    }
    ASSERT_TRUE(env->AtomicWriteFile(wal_path, log_bytes).ok());
    Result<QbhSystem> r = QbhSystem::Open(path, env);
    ASSERT_TRUE(r.ok());  // checkpoint is intact, so recovery must succeed
    EXPECT_GE(r.value().size(), 5u);
    for (std::int64_t id = 0; id < 5; ++id) {
      EXPECT_TRUE(r.value().melody(id).has_value());
    }
  }
}

TEST(FuzzTest, RStarTreeAdversarialInsertOrders) {
  // Sorted, reverse-sorted, duplicate-heavy, and clustered insert orders all
  // keep the invariants.
  for (int mode = 0; mode < 4; ++mode) {
    Rng rng(10 + mode);
    RStarTree tree(3);
    for (std::int64_t id = 0; id < 3000; ++id) {
      Series p(3);
      switch (mode) {
        case 0:  // sorted along a line
          p = {static_cast<double>(id), static_cast<double>(id) * 0.5, 0.0};
          break;
        case 1:  // reverse sorted
          p = {static_cast<double>(3000 - id), 0.0, static_cast<double>(id % 7)};
          break;
        case 2:  // heavy duplicates
          p = {static_cast<double>(id % 5), static_cast<double>(id % 3), 1.0};
          break;
        default:  // tight clusters far apart
          p = {rng.Gaussian(static_cast<double>(id % 10) * 1000.0, 0.01),
               rng.Gaussian(), rng.Gaussian()};
          break;
      }
      tree.Insert(p, id);
    }
    tree.CheckInvariants();
    EXPECT_EQ(tree.size(), 3000u);
    // Everything must be retrievable.
    IndexStats stats;
    auto all = tree.RangeQuery(Rect(Series(3, -1e7), Series(3, 1e7)), 0.0, &stats);
    EXPECT_EQ(all.size(), 3000u) << "mode=" << mode;
  }
}

// --- Wire protocol -----------------------------------------------------------
//
// The serving daemon's wire surface: length-prefixed frames and the text
// request/response grammar. Hostile bytes — bad announced lengths, truncated
// bodies, non-UTF8 verbs, mutated real frames — must always come back as a
// Status (or a clean parse), never an abort: the daemon outlives any client.

TEST(FuzzTest, DecodeFrameNeverCrashesOnGarbage) {
  Rng rng(13);
  for (int trial = 0; trial < 800; ++trial) {
    const std::string buffer =
        RandomBytes(&rng, static_cast<std::size_t>(rng.UniformInt(0, 64)));
    std::string payload;
    std::size_t consumed = 0;
    bool complete = false;
    Status st = serve::DecodeFrame(buffer, &payload, &consumed, &complete);
    if (st.ok() && complete) {
      EXPECT_LE(consumed, buffer.size());
      EXPECT_LE(payload.size(), serve::kMaxFrameBytes);
    }
  }
}

TEST(FuzzTest, DecodeFrameRejectsHostileAnnouncedLengths) {
  // Headers announcing more than kMaxFrameBytes (up to 4GB) must be refused
  // before any allocation; truncated bodies must simply read as incomplete.
  for (std::uint32_t n :
       {serve::kMaxFrameBytes + 1, 0x7fffffffu, 0xffffffffu}) {
    std::string buffer;
    buffer.push_back(static_cast<char>(n & 0xff));
    buffer.push_back(static_cast<char>((n >> 8) & 0xff));
    buffer.push_back(static_cast<char>((n >> 16) & 0xff));
    buffer.push_back(static_cast<char>((n >> 24) & 0xff));
    buffer += "body";
    std::string payload;
    std::size_t consumed = 0;
    bool complete = false;
    EXPECT_FALSE(
        serve::DecodeFrame(buffer, &payload, &consumed, &complete).ok());
  }
  // An honest header with a short body: incomplete, not an error.
  std::string truncated = serve::EncodeFrame("hello world");
  truncated.resize(truncated.size() - 5);
  std::string payload;
  std::size_t consumed = 0;
  bool complete = false;
  EXPECT_TRUE(
      serve::DecodeFrame(truncated, &payload, &consumed, &complete).ok());
  EXPECT_FALSE(complete);
}

TEST(FuzzTest, ParseRequestNeverCrashesOnGarbage) {
  Rng rng(14);
  serve::Request request;
  for (int trial = 0; trial < 800; ++trial) {
    const std::string payload =
        RandomBytes(&rng, static_cast<std::size_t>(rng.UniformInt(0, 200)));
    Status st = serve::ParseRequest(payload, &request);  // never aborts
    (void)st;
  }
  // Non-UTF8 verbs and embedded NULs are errors, not crashes.
  for (const std::string payload :
       {std::string("\xc3\x28 5 0\npitch 1 2\n"),
        std::string("qu\x00" "ery 5 0\n", 10),
        std::string("\xff\xfe\xfd\n"), std::string("query \xf0\x9f 0\n")}) {
    EXPECT_FALSE(serve::ParseRequest(payload, &request).ok());
  }
}

TEST(FuzzTest, ParseRequestOnMutatedValidFrames) {
  Rng rng(15);
  serve::Request seed;
  seed.kind = serve::Request::Kind::kQuery;
  seed.top_k = 5;
  seed.deadline_ms = 40;
  for (double v : {60.0, 62.5, 59.1, 64.0, 61.2}) seed.pitch.push_back(v);
  const std::string valid = serve::EncodeRequest(seed);
  serve::Request out;
  for (int trial = 0; trial < 800; ++trial) {
    std::string text = valid;
    const int mutations = rng.UniformInt(1, 6);
    for (int m = 0; m < mutations; ++m) {
      switch (rng.NextBounded(3)) {
        case 0:  // flip a byte (possibly to a non-ASCII value)
          text[static_cast<std::size_t>(rng.NextBounded(
              static_cast<std::uint64_t>(text.size())))] =
              static_cast<char>(rng.NextBounded(256));
          break;
        case 1:  // truncate
          text.resize(static_cast<std::size_t>(rng.NextBounded(
              static_cast<std::uint64_t>(text.size()) + 1)));
          break;
        default:  // duplicate a tail chunk
          text += text.substr(text.size() / 2);
          break;
      }
      if (text.empty()) break;
    }
    Status st = serve::ParseRequest(text, &out);  // Status or parse, only
    (void)st;
  }
}

TEST(FuzzTest, ParseResponseNeverCrashesOnGarbageOrMutations) {
  Rng rng(16);
  serve::Response seed;
  seed.ok = true;
  seed.partial = true;
  seed.shards_failed = 1;
  for (int i = 0; i < 4; ++i) {
    QbhMatch m;
    m.id = i;
    m.distance = 1.5 * i;
    m.name = "melody-" + std::to_string(i);
    seed.matches.push_back(m);
  }
  const std::string valid = serve::EncodeResponse(seed);
  serve::Response out;
  for (int trial = 0; trial < 800; ++trial) {
    std::string text =
        trial % 2 == 0
            ? RandomBytes(&rng,
                          static_cast<std::size_t>(rng.UniformInt(0, 200)))
            : valid;
    if (trial % 2 == 1 && !text.empty()) {
      text[static_cast<std::size_t>(rng.NextBounded(
          static_cast<std::uint64_t>(text.size())))] =
          static_cast<char>(rng.NextBounded(256));
    }
    Status st = serve::ParseResponse(text, &out);
    (void)st;
  }
}

TEST(FuzzTest, FrameRoundTripSurvivesRandomPayloads) {
  Rng rng(17);
  for (int trial = 0; trial < 400; ++trial) {
    const std::string payload =
        RandomBytes(&rng, static_cast<std::size_t>(rng.UniformInt(0, 300)));
    const std::string frame = serve::EncodeFrame(payload);
    std::string decoded;
    std::size_t consumed = 0;
    bool complete = false;
    ASSERT_TRUE(
        serve::DecodeFrame(frame, &decoded, &consumed, &complete).ok());
    ASSERT_TRUE(complete);
    EXPECT_EQ(consumed, frame.size());
    EXPECT_EQ(decoded, payload);
  }
}

TEST(FuzzTest, GridFileAdversarialInsertOrders) {
  GridFile grid(2);
  for (std::int64_t id = 0; id < 5000; ++id) {
    // All points identical: splits can make no progress and must not loop.
    grid.Insert({1.0, 1.0}, id);
  }
  EXPECT_EQ(grid.size(), 5000u);
  auto all = grid.RangeQuery(Rect::FromPoint({1.0, 1.0}), 0.0);
  EXPECT_EQ(all.size(), 5000u);
}

}  // namespace
}  // namespace humdex
