// Exactness oracle for the squared-threshold filter cascade (DESIGN.md §10,
// §11): for every index backend and feature scheme, range and kNN answers
// must be bit-identical to a brute-force banded-DTW scan under the FULL
// POWER SET of stage toggles — Kim × Triangle × Keogh × Improved, sixteen
// cascades per backend/scheme — and identically under the scalar reference
// kernels and every SIMD tier the machine can run (whole-query A/B via
// ScopedKernelOverride). Per-stage counters must account for every index
// candidate exactly once (pruned by one stage or verified by exact DTW),
// disabled stages must report zero, and the counters must merge correctly
// through batch aggregation. Separate tests pin down the value of the
// LB_Triangle stages: with Keogh off the reference-point bounds strictly
// reduce exact-DTW calls, and tau-seeding strictly reduces them for
// optimal kNN (with Keogh on they are dominated — see DESIGN.md §11 — so
// there the gate is answers-identical, calls no worse).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "gemini/query_engine.h"
#include "ts/kernels.h"
#include "ts/normal_form.h"
#include "util/random.h"

namespace humdex {
namespace {

constexpr std::size_t kLen = 64;
constexpr std::size_t kDim = 8;

std::vector<Series> RandomWalkNormalForms(std::size_t count,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Series> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Series walk(kLen);
    double v = 0.0;
    for (double& x : walk) {
      v += rng.Uniform(-1.0, 1.0);
      x = v;
    }
    out.push_back(NormalForm(walk, kLen));
  }
  return out;
}

std::vector<Series> NoisyQueries(const std::vector<Series>& corpus,
                                 std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Series> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Series q = corpus[i % corpus.size()];
    for (double& x : q) x += rng.Uniform(-0.3, 0.3);
    out.push_back(NormalForm(q, kLen));
  }
  return out;
}

std::shared_ptr<FeatureScheme> SchemeFor(const std::string& name) {
  if (name == "new_paa") return MakeNewPaaScheme(kLen, kDim);
  return MakeDftScheme(kLen, kDim);
}

// The oracle: scan everything with the exact banded distance.
std::vector<Neighbor> BruteForceRange(const std::vector<Series>& corpus,
                                      const Series& query, double epsilon,
                                      std::size_t band_k) {
  std::vector<Neighbor> out;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    double d = LdtwDistance(query, corpus[i], band_k);
    if (d <= epsilon) out.push_back({static_cast<std::int64_t>(i), d});
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& got,
                         const std::vector<Neighbor>& want,
                         const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << what << " at " << i;
    // Bit-identical, not merely close: the cascade verifies survivors with
    // the same LdtwDistance the oracle runs, on the same bytes.
    EXPECT_EQ(got[i].distance, want[i].distance) << what << " at " << i;
  }
}

/// The sixteen cascade configurations: one bit per optional stage. The
/// corpus-side refine pass rides with the triangle bit here (it shares the
/// reference set); its independence is covered by RefineRunsWithoutTriangle.
struct StageMask {
  bool kim, triangle, keogh, improved;
};

StageMask MaskFor(int mask) {
  return {(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0, (mask & 8) != 0};
}

std::string MaskName(const StageMask& m) {
  return std::string("kim=") + (m.kim ? "1" : "0") +
         " triangle=" + (m.triangle ? "1" : "0") +
         " keogh=" + (m.keogh ? "1" : "0") +
         " improved=" + (m.improved ? "1" : "0");
}

QueryEngineOptions OptionsFor(IndexKind kind, const StageMask& m) {
  QueryEngineOptions opts;
  opts.normal_len = kLen;
  opts.index.kind = kind;
  opts.cascade.kim = m.kim;
  opts.cascade.triangle = m.triangle;
  opts.cascade.triangle_refine = m.triangle;
  opts.cascade.keogh = m.keogh;
  opts.cascade.improved = m.improved;
  return opts;
}

/// Per-stage accounting identity for an untruncated query: every index
/// candidate is pruned by exactly one stage or reaches exact DTW, and
/// disabled stages never claim a prune.
void ExpectStageAccounting(const QueryStats& stats, const StageMask& m,
                           const std::string& what) {
  EXPECT_EQ(stats.exact_dtw_calls, stats.lb_survivors) << what;
  EXPECT_EQ(stats.kim_pruned + stats.triangle_pruned + stats.refine_pruned +
                stats.keogh_pruned + stats.improved_pruned +
                stats.lb_survivors,
            stats.index_candidates)
      << what;
  if (!m.kim) EXPECT_EQ(stats.kim_pruned, 0u) << what;
  if (!m.triangle) {
    EXPECT_EQ(stats.triangle_pruned, 0u) << what;
    EXPECT_EQ(stats.refine_pruned, 0u) << what;
  }
  if (!m.keogh) EXPECT_EQ(stats.keogh_pruned, 0u) << what;
  if (!m.improved) EXPECT_EQ(stats.improved_pruned, 0u) << what;
}

class CascadeExactnessTest
    : public ::testing::TestWithParam<std::tuple<IndexKind, std::string>> {};

TEST_P(CascadeExactnessTest, RangeMatchesBruteForceForEveryStageCombination) {
  auto [kind, scheme_name] = GetParam();
  std::vector<Series> corpus = RandomWalkNormalForms(200, 21);
  std::vector<Series> queries = NoisyQueries(corpus, 6, 87);

  for (int mask = 0; mask < 16; ++mask) {
    const StageMask m = MaskFor(mask);
    DtwQueryEngine engine(SchemeFor(scheme_name), OptionsFor(kind, m));
    engine.AddAll(corpus);
    const std::string what = MaskName(m);
    for (const Series& q : queries) {
      double epsilon = engine.KnnQuery(q, 5).back().distance;
      QueryStats stats;
      std::vector<Neighbor> got = engine.RangeQuery(q, epsilon, &stats);
      std::vector<Neighbor> want =
          BruteForceRange(corpus, q, epsilon, engine.band_radius());
      ExpectSameNeighbors(got, want, what);
      ExpectStageAccounting(stats, m, what);
      EXPECT_GE(stats.lb_survivors, stats.results) << what;
    }
  }
}

TEST_P(CascadeExactnessTest, KnnMatchesBruteForceForEveryStageCombination) {
  auto [kind, scheme_name] = GetParam();
  std::vector<Series> corpus = RandomWalkNormalForms(180, 31);
  std::vector<Series> queries = NoisyQueries(corpus, 4, 97);
  const std::size_t k = 7;

  std::vector<std::vector<Neighbor>> oracle;
  {
    // Oracle is cascade-independent; compute it once with any engine's band.
    DtwQueryEngine probe(SchemeFor(scheme_name),
                         OptionsFor(kind, MaskFor(0)));
    for (const Series& q : queries) {
      std::vector<Neighbor> all =
          BruteForceRange(corpus, q, kInfiniteDistance, probe.band_radius());
      std::sort(all.begin(), all.end());
      all.resize(k);
      oracle.push_back(std::move(all));
    }
  }

  for (int mask = 0; mask < 16; ++mask) {
    const StageMask m = MaskFor(mask);
    DtwQueryEngine engine(SchemeFor(scheme_name), OptionsFor(kind, m));
    engine.AddAll(corpus);
    const std::string what = MaskName(m);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      QueryStats stats_two_step, stats_optimal;
      ExpectSameNeighbors(engine.KnnQuery(queries[i], k, &stats_two_step),
                          oracle[i], "two-step knn " + what);
      ExpectSameNeighbors(
          engine.KnnQueryOptimal(queries[i], k, &stats_optimal), oracle[i],
          "optimal knn " + what);
      EXPECT_EQ(stats_two_step.results, k) << what;
      EXPECT_EQ(stats_optimal.results, k) << what;
      // The optimal traversal examines each candidate exactly once too.
      ExpectStageAccounting(stats_optimal, m, "optimal knn " + what);
    }
  }
}

TEST_P(CascadeExactnessTest, ForcedScalarAndSimdTiersAgreeWholeQuery) {
  auto [kind, scheme_name] = GetParam();
  std::vector<Series> corpus = RandomWalkNormalForms(200, 41);
  std::vector<Series> queries = NoisyQueries(corpus, 6, 107);
  QueryEngineOptions opts;
  opts.normal_len = kLen;
  opts.index.kind = kind;
  DtwQueryEngine engine(SchemeFor(scheme_name), opts);
  engine.AddAll(corpus);

  for (const Series& q : queries) {
    double epsilon;
    std::vector<Neighbor> range_ref, knn_ref;
    {
      kernels::ScopedKernelOverride force_scalar(SimdLevel::kScalar);
      epsilon = engine.KnnQuery(q, 5).back().distance;
      range_ref = engine.RangeQuery(q, epsilon);
      knn_ref = engine.KnnQueryOptimal(q, 4);
    }
    for (SimdLevel level : {SimdLevel::kSse2, SimdLevel::kAvx2}) {
      if (kernels::KernelTableFor(level) == nullptr) continue;
      kernels::ScopedKernelOverride force(level);
      std::vector<Neighbor> range_got = engine.RangeQuery(q, epsilon);
      std::vector<Neighbor> knn_got = engine.KnnQueryOptimal(q, 4);
      ASSERT_EQ(range_got.size(), range_ref.size()) << SimdLevelName(level);
      for (std::size_t i = 0; i < range_got.size(); ++i) {
        EXPECT_EQ(range_got[i].id, range_ref[i].id);
        // The kernels are bit-identical across tiers, so so are the queries.
        EXPECT_EQ(range_got[i].distance, range_ref[i].distance);
      }
      ASSERT_EQ(knn_got.size(), knn_ref.size()) << SimdLevelName(level);
      for (std::size_t i = 0; i < knn_got.size(); ++i) {
        EXPECT_EQ(knn_got[i].id, knn_ref[i].id);
        EXPECT_EQ(knn_got[i].distance, knn_ref[i].distance);
      }
    }
  }
}

TEST_P(CascadeExactnessTest, RemoveKeepsArenaMirrorConsistent) {
  auto [kind, scheme_name] = GetParam();
  std::vector<Series> corpus = RandomWalkNormalForms(120, 51);
  std::vector<Series> queries = NoisyQueries(corpus, 4, 117);
  QueryEngineOptions opts;
  opts.normal_len = kLen;
  opts.index.kind = kind;
  DtwQueryEngine engine(SchemeFor(scheme_name), opts);
  engine.AddAll(corpus);

  // Remove a third of the corpus (hits the swap-remove path repeatedly),
  // then re-check range answers against a brute force over the survivors.
  Rng rng(61);
  std::vector<bool> removed(corpus.size(), false);
  for (int i = 0; i < 40; ++i) {
    std::size_t id = rng.NextBounded(static_cast<std::uint32_t>(corpus.size()));
    if (!removed[id]) {
      ASSERT_TRUE(engine.Remove(static_cast<std::int64_t>(id)));
      removed[id] = true;
    }
  }
  for (const Series& q : queries) {
    double epsilon = engine.KnnQuery(q, 5).back().distance;
    std::vector<Neighbor> got = engine.RangeQuery(q, epsilon);
    std::vector<Neighbor> want;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      if (removed[i]) continue;
      double d = LdtwDistance(q, corpus[i], engine.band_radius());
      if (d <= epsilon) want.push_back({static_cast<std::int64_t>(i), d});
    }
    std::sort(want.begin(), want.end());
    ExpectSameNeighbors(got, want, "post-remove range");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CascadeExactnessTest,
    ::testing::Combine(::testing::Values(IndexKind::kRStarTree,
                                         IndexKind::kGridFile,
                                         IndexKind::kLinearScan),
                       ::testing::Values(std::string("new_paa"),
                                         std::string("dft"))),
    [](const auto& info) {
      std::string kind;
      switch (std::get<0>(info.param)) {
        case IndexKind::kRStarTree: kind = "rstar"; break;
        case IndexKind::kGridFile: kind = "grid"; break;
        case IndexKind::kLinearScan: kind = "linear"; break;
      }
      return kind + "_" + std::get<1>(info.param);
    });

// Batch aggregation must sum the new counters exactly like the old ones.
TEST(CascadeStatsTest, BatchAggregationSumsNewCounters) {
  std::vector<Series> corpus = RandomWalkNormalForms(150, 71);
  std::vector<Series> queries = NoisyQueries(corpus, 12, 127);
  QueryEngineOptions opts;
  opts.normal_len = kLen;
  DtwQueryEngine engine(MakeNewPaaScheme(kLen, kDim), opts);
  engine.AddAll(corpus);
  double epsilon = engine.KnnQuery(queries[0], 5).back().distance;

  QueryStats sum_serial;
  for (const Series& q : queries) {
    QueryStats s;
    engine.RangeQuery(q, epsilon, &s);
    sum_serial += s;
  }
  QueryStats aggregate;
  engine.RangeQueryBatch(queries, epsilon, /*threads=*/4, &aggregate);
  EXPECT_EQ(aggregate.kim_pruned, sum_serial.kim_pruned);
  EXPECT_EQ(aggregate.triangle_pruned, sum_serial.triangle_pruned);
  EXPECT_EQ(aggregate.refine_pruned, sum_serial.refine_pruned);
  EXPECT_EQ(aggregate.keogh_pruned, sum_serial.keogh_pruned);
  EXPECT_EQ(aggregate.improved_pruned, sum_serial.improved_pruned);
  EXPECT_EQ(aggregate.lb_survivors, sum_serial.lb_survivors);
  EXPECT_EQ(aggregate.exact_dtw_calls, sum_serial.exact_dtw_calls);
  EXPECT_EQ(aggregate.results, sum_serial.results);
  EXPECT_GT(aggregate.improved_ns + aggregate.lb_ns + aggregate.dtw_ns, 0u);
}

// The corpus-side refine pass is toggled independently of the query-side
// triangle stage (they share only the reference set): with triangle off and
// refine on, answers stay exact and only refine claims prunes.
TEST(CascadeStatsTest, RefineRunsWithoutTriangle) {
  std::vector<Series> corpus = RandomWalkNormalForms(200, 91);
  std::vector<Series> queries = NoisyQueries(corpus, 8, 147);
  QueryEngineOptions opts;
  opts.normal_len = kLen;
  opts.cascade.triangle = false;
  opts.cascade.triangle_refine = true;
  opts.cascade.triangle_references = 8;
  DtwQueryEngine engine(MakeNewPaaScheme(kLen, kDim), opts);
  engine.AddAll(corpus);
  ASSERT_EQ(engine.references().size(), 8u);

  for (const Series& q : queries) {
    double epsilon = engine.KnnQuery(q, 5).back().distance;
    QueryStats stats;
    std::vector<Neighbor> got = engine.RangeQuery(q, epsilon, &stats);
    std::vector<Neighbor> want =
        BruteForceRange(corpus, q, epsilon, engine.band_radius());
    ExpectSameNeighbors(got, want, "refine-only range");
    EXPECT_EQ(stats.triangle_pruned, 0u);
    EXPECT_EQ(stats.kim_pruned + stats.refine_pruned + stats.keogh_pruned +
                  stats.improved_pruned + stats.lb_survivors,
              stats.index_candidates);
  }
}

// The headline claim of DESIGN.md §11: with the Keogh stages off, the O(P)
// reference-point bounds strictly reduce exact-DTW calls versus a Kim-only
// cascade — at identical answers. (With Keogh on they are dominated and can
// only shed O(n) work, which the ablation bench measures instead.)
TEST(CascadeStatsTest, TriangleStrictlyReducesDtwCallsWhenKeoghIsOff) {
  std::vector<Series> corpus = RandomWalkNormalForms(300, 101);
  std::vector<Series> queries = NoisyQueries(corpus, 12, 157);

  auto run = [&](bool triangle, QueryStats* total) {
    QueryEngineOptions opts;
    opts.normal_len = kLen;
    opts.cascade.kim = true;
    opts.cascade.triangle = triangle;
    opts.cascade.triangle_refine = triangle;
    opts.cascade.triangle_references = 8;
    opts.cascade.keogh = false;
    opts.cascade.improved = false;
    DtwQueryEngine engine(MakeNewPaaScheme(kLen, kDim), opts);
    engine.AddAll(corpus);
    std::vector<std::vector<Neighbor>> out;
    for (const Series& q : queries) {
      double epsilon = engine.KnnQuery(q, 3).back().distance;
      QueryStats s;
      out.push_back(engine.RangeQuery(q, epsilon, &s));
      *total += s;
    }
    return out;
  };

  QueryStats without, with;
  auto results_without = run(false, &without);
  auto results_with = run(true, &with);
  ASSERT_EQ(results_without.size(), results_with.size());
  for (std::size_t i = 0; i < results_without.size(); ++i) {
    ExpectSameNeighbors(results_with[i], results_without[i],
                        "triangle ablation");
  }
  EXPECT_GT(with.triangle_pruned + with.refine_pruned, 0u)
      << "reference bounds pruned nothing on a workload built for them";
  EXPECT_LT(with.exact_dtw_calls, without.exact_dtw_calls);
}

// Tau-seeding (the ED-through-reference upper bound) must strictly reduce
// exact-DTW calls for kNN at identical answers. Tau binds only when some
// reference lies near the query — exactly the query-by-humming workload,
// where a hum is a noisy rendition of a corpus melody — so the test plants
// references among the melodies its queries are renditions of, and uses a
// coarse feature scheme so the index's candidate ordering alone cannot make
// every unconditional heap-fill DTW a useful one.
TEST(CascadeStatsTest, TauSeedingStrictlyReducesKnnDtwCalls) {
  std::vector<Series> corpus = RandomWalkNormalForms(300, 111);
  Rng rng(167);
  std::vector<Series> queries;
  std::vector<Series> refs;
  for (std::size_t i = 0; i < 12; ++i) {
    Series q = corpus[i];
    for (double& x : q) x += rng.Uniform(-0.2, 0.2);
    queries.push_back(NormalForm(q, kLen));
  }
  for (std::size_t i = 0; i < 8; ++i) refs.push_back(corpus[i]);

  auto run = [&](bool with_refs, QueryStats* opt_total,
                 QueryStats* two_step_total) {
    QueryEngineOptions opts;
    opts.normal_len = kLen;
    if (!with_refs) opts.cascade.triangle_references = 0;
    DtwQueryEngine engine(MakeDftScheme(kLen, 4), opts);
    if (with_refs) engine.SetReferences(refs);
    engine.AddAll(corpus);
    std::vector<std::vector<Neighbor>> out;
    for (const Series& q : queries) {
      QueryStats s_opt, s_two;
      out.push_back(engine.KnnQueryOptimal(q, 5, &s_opt));
      out.push_back(engine.KnnQuery(q, 5, &s_two));
      *opt_total += s_opt;
      *two_step_total += s_two;
    }
    return out;
  };

  QueryStats opt_without, two_without, opt_with, two_with;
  auto results_without = run(false, &opt_without, &two_without);
  auto results_with = run(true, &opt_with, &two_with);
  ASSERT_EQ(results_without.size(), results_with.size());
  for (std::size_t i = 0; i < results_without.size(); ++i) {
    ExpectSameNeighbors(results_with[i], results_without[i], "tau ablation");
  }
  EXPECT_LT(opt_with.exact_dtw_calls, opt_without.exact_dtw_calls);
  EXPECT_LT(two_with.exact_dtw_calls, two_without.exact_dtw_calls);
}

// Disabling a stage can only shift work to later stages, never change the
// answer; enabling Kim + Improved must strictly reduce exact-DTW calls on a
// workload where the filter has anything to do at all.
TEST(CascadeStatsTest, StagesReduceExactDtwCallsWithoutChangingAnswers) {
  std::vector<Series> corpus = RandomWalkNormalForms(300, 81);
  std::vector<Series> queries = NoisyQueries(corpus, 16, 137);

  auto run = [&](bool kim, bool improved, QueryStats* total) {
    QueryEngineOptions opts;
    opts.normal_len = kLen;
    opts.cascade.kim = kim;
    opts.cascade.improved = improved;
    DtwQueryEngine engine(MakeNewPaaScheme(kLen, kDim), opts);
    engine.AddAll(corpus);
    std::vector<std::vector<Neighbor>> out;
    for (const Series& q : queries) {
      double epsilon = engine.KnnQuery(q, 3).back().distance;
      QueryStats s;
      out.push_back(engine.RangeQuery(q, 1.5 * epsilon, &s));
      *total += s;
    }
    return out;
  };

  QueryStats off, on;
  auto results_off = run(false, false, &off);
  auto results_on = run(true, true, &on);
  ASSERT_EQ(results_off.size(), results_on.size());
  for (std::size_t i = 0; i < results_off.size(); ++i) {
    ExpectSameNeighbors(results_on[i], results_off[i], "stage ablation");
  }
  EXPECT_LT(on.exact_dtw_calls, off.exact_dtw_calls)
      << "Kim+Improved pruned nothing on a workload built to exercise them";
  EXPECT_GT(on.kim_pruned + on.improved_pruned, 0u);
}

}  // namespace
}  // namespace humdex
