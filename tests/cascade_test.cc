// Exactness of the squared-threshold filter cascade (DESIGN.md §10): for
// every index backend and feature scheme, range and kNN answers must equal a
// brute-force banded-DTW scan — same ids, distances within 1e-9 — with every
// optional stage (Kim, LB_Improved) enabled or disabled, and identically
// under the scalar reference kernels and every SIMD tier the machine can run
// (whole-query A/B via ScopedKernelOverride). Also checks that the new
// cascade counters account for every candidate and merge correctly through
// batch aggregation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "gemini/query_engine.h"
#include "ts/kernels.h"
#include "ts/normal_form.h"
#include "util/random.h"

namespace humdex {
namespace {

constexpr std::size_t kLen = 64;
constexpr std::size_t kDim = 8;

std::vector<Series> RandomWalkNormalForms(std::size_t count,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Series> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Series walk(kLen);
    double v = 0.0;
    for (double& x : walk) {
      v += rng.Uniform(-1.0, 1.0);
      x = v;
    }
    out.push_back(NormalForm(walk, kLen));
  }
  return out;
}

std::vector<Series> NoisyQueries(const std::vector<Series>& corpus,
                                 std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Series> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Series q = corpus[i % corpus.size()];
    for (double& x : q) x += rng.Uniform(-0.3, 0.3);
    out.push_back(NormalForm(q, kLen));
  }
  return out;
}

std::shared_ptr<FeatureScheme> SchemeFor(const std::string& name) {
  if (name == "new_paa") return MakeNewPaaScheme(kLen, kDim);
  return MakeDftScheme(kLen, kDim);
}

// The oracle: scan everything with the exact banded distance.
std::vector<Neighbor> BruteForceRange(const std::vector<Series>& corpus,
                                      const Series& query, double epsilon,
                                      std::size_t band_k) {
  std::vector<Neighbor> out;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    double d = LdtwDistance(query, corpus[i], band_k);
    if (d <= epsilon) out.push_back({static_cast<std::int64_t>(i), d});
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& got,
                         const std::vector<Neighbor>& want,
                         const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << what << " at " << i;
    EXPECT_NEAR(got[i].distance, want[i].distance, 1e-9) << what << " at " << i;
  }
}

class CascadeExactnessTest
    : public ::testing::TestWithParam<std::tuple<IndexKind, std::string>> {};

TEST_P(CascadeExactnessTest, RangeMatchesBruteForceForEveryStageCombination) {
  auto [kind, scheme_name] = GetParam();
  std::vector<Series> corpus = RandomWalkNormalForms(250, 21);
  std::vector<Series> queries = NoisyQueries(corpus, 10, 87);

  for (bool kim : {true, false}) {
    for (bool improved : {true, false}) {
      QueryEngineOptions opts;
      opts.normal_len = kLen;
      opts.index.kind = kind;
      opts.cascade.kim = kim;
      opts.cascade.improved = improved;
      DtwQueryEngine engine(SchemeFor(scheme_name), opts);
      engine.AddAll(corpus);
      for (const Series& q : queries) {
        double epsilon = engine.KnnQuery(q, 5).back().distance;
        QueryStats stats;
        std::vector<Neighbor> got = engine.RangeQuery(q, epsilon, &stats);
        std::vector<Neighbor> want =
            BruteForceRange(corpus, q, epsilon, engine.band_radius());
        ExpectSameNeighbors(got, want,
                            "kim=" + std::to_string(kim) +
                                " improved=" + std::to_string(improved));
        // Stage accounting: every index candidate is pruned by exactly one
        // stage or reaches exact DTW.
        EXPECT_EQ(stats.exact_dtw_calls, stats.lb_survivors);
        EXPECT_LE(stats.kim_pruned + stats.improved_pruned + stats.lb_survivors,
                  stats.index_candidates);
        if (!kim) EXPECT_EQ(stats.kim_pruned, 0u);
        if (!improved) EXPECT_EQ(stats.improved_pruned, 0u);
        EXPECT_GE(stats.lb_survivors, stats.results);
      }
    }
  }
}

TEST_P(CascadeExactnessTest, KnnMatchesBruteForceOrdering) {
  auto [kind, scheme_name] = GetParam();
  std::vector<Series> corpus = RandomWalkNormalForms(220, 31);
  std::vector<Series> queries = NoisyQueries(corpus, 8, 97);
  QueryEngineOptions opts;
  opts.normal_len = kLen;
  opts.index.kind = kind;
  DtwQueryEngine engine(SchemeFor(scheme_name), opts);
  engine.AddAll(corpus);

  for (const Series& q : queries) {
    const std::size_t k = 7;
    std::vector<Neighbor> all =
        BruteForceRange(corpus, q, kInfiniteDistance, engine.band_radius());
    std::sort(all.begin(), all.end());
    all.resize(k);
    QueryStats stats_two_step, stats_optimal;
    ExpectSameNeighbors(engine.KnnQuery(q, k, &stats_two_step), all,
                        "two-step knn");
    ExpectSameNeighbors(engine.KnnQueryOptimal(q, k, &stats_optimal), all,
                        "optimal knn");
    EXPECT_EQ(stats_two_step.results, k);
    EXPECT_EQ(stats_optimal.results, k);
  }
}

TEST_P(CascadeExactnessTest, ForcedScalarAndSimdTiersAgreeWholeQuery) {
  auto [kind, scheme_name] = GetParam();
  std::vector<Series> corpus = RandomWalkNormalForms(200, 41);
  std::vector<Series> queries = NoisyQueries(corpus, 6, 107);
  QueryEngineOptions opts;
  opts.normal_len = kLen;
  opts.index.kind = kind;
  DtwQueryEngine engine(SchemeFor(scheme_name), opts);
  engine.AddAll(corpus);

  for (const Series& q : queries) {
    double epsilon;
    std::vector<Neighbor> range_ref, knn_ref;
    {
      kernels::ScopedKernelOverride force_scalar(SimdLevel::kScalar);
      epsilon = engine.KnnQuery(q, 5).back().distance;
      range_ref = engine.RangeQuery(q, epsilon);
      knn_ref = engine.KnnQueryOptimal(q, 4);
    }
    for (SimdLevel level : {SimdLevel::kSse2, SimdLevel::kAvx2}) {
      if (kernels::KernelTableFor(level) == nullptr) continue;
      kernels::ScopedKernelOverride force(level);
      std::vector<Neighbor> range_got = engine.RangeQuery(q, epsilon);
      std::vector<Neighbor> knn_got = engine.KnnQueryOptimal(q, 4);
      ASSERT_EQ(range_got.size(), range_ref.size()) << SimdLevelName(level);
      for (std::size_t i = 0; i < range_got.size(); ++i) {
        EXPECT_EQ(range_got[i].id, range_ref[i].id);
        // The kernels are bit-identical across tiers, so so are the queries.
        EXPECT_EQ(range_got[i].distance, range_ref[i].distance);
      }
      ASSERT_EQ(knn_got.size(), knn_ref.size()) << SimdLevelName(level);
      for (std::size_t i = 0; i < knn_got.size(); ++i) {
        EXPECT_EQ(knn_got[i].id, knn_ref[i].id);
        EXPECT_EQ(knn_got[i].distance, knn_ref[i].distance);
      }
    }
  }
}

TEST_P(CascadeExactnessTest, RemoveKeepsArenaMirrorConsistent) {
  auto [kind, scheme_name] = GetParam();
  std::vector<Series> corpus = RandomWalkNormalForms(120, 51);
  std::vector<Series> queries = NoisyQueries(corpus, 4, 117);
  QueryEngineOptions opts;
  opts.normal_len = kLen;
  opts.index.kind = kind;
  DtwQueryEngine engine(SchemeFor(scheme_name), opts);
  engine.AddAll(corpus);

  // Remove a third of the corpus (hits the swap-remove path repeatedly),
  // then re-check range answers against a brute force over the survivors.
  Rng rng(61);
  std::vector<bool> removed(corpus.size(), false);
  for (int i = 0; i < 40; ++i) {
    std::size_t id = rng.NextBounded(static_cast<std::uint32_t>(corpus.size()));
    if (!removed[id]) {
      ASSERT_TRUE(engine.Remove(static_cast<std::int64_t>(id)));
      removed[id] = true;
    }
  }
  for (const Series& q : queries) {
    double epsilon = engine.KnnQuery(q, 5).back().distance;
    std::vector<Neighbor> got = engine.RangeQuery(q, epsilon);
    std::vector<Neighbor> want;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      if (removed[i]) continue;
      double d = LdtwDistance(q, corpus[i], engine.band_radius());
      if (d <= epsilon) want.push_back({static_cast<std::int64_t>(i), d});
    }
    std::sort(want.begin(), want.end());
    ExpectSameNeighbors(got, want, "post-remove range");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CascadeExactnessTest,
    ::testing::Combine(::testing::Values(IndexKind::kRStarTree,
                                         IndexKind::kGridFile,
                                         IndexKind::kLinearScan),
                       ::testing::Values(std::string("new_paa"),
                                         std::string("dft"))),
    [](const auto& info) {
      std::string kind;
      switch (std::get<0>(info.param)) {
        case IndexKind::kRStarTree: kind = "rstar"; break;
        case IndexKind::kGridFile: kind = "grid"; break;
        case IndexKind::kLinearScan: kind = "linear"; break;
      }
      return kind + "_" + std::get<1>(info.param);
    });

// Batch aggregation must sum the new counters exactly like the old ones.
TEST(CascadeStatsTest, BatchAggregationSumsNewCounters) {
  std::vector<Series> corpus = RandomWalkNormalForms(150, 71);
  std::vector<Series> queries = NoisyQueries(corpus, 12, 127);
  QueryEngineOptions opts;
  opts.normal_len = kLen;
  DtwQueryEngine engine(MakeNewPaaScheme(kLen, kDim), opts);
  engine.AddAll(corpus);
  double epsilon = engine.KnnQuery(queries[0], 5).back().distance;

  QueryStats sum_serial;
  for (const Series& q : queries) {
    QueryStats s;
    engine.RangeQuery(q, epsilon, &s);
    sum_serial += s;
  }
  QueryStats aggregate;
  engine.RangeQueryBatch(queries, epsilon, /*threads=*/4, &aggregate);
  EXPECT_EQ(aggregate.kim_pruned, sum_serial.kim_pruned);
  EXPECT_EQ(aggregate.improved_pruned, sum_serial.improved_pruned);
  EXPECT_EQ(aggregate.lb_survivors, sum_serial.lb_survivors);
  EXPECT_EQ(aggregate.exact_dtw_calls, sum_serial.exact_dtw_calls);
  EXPECT_EQ(aggregate.results, sum_serial.results);
  EXPECT_GT(aggregate.improved_ns + aggregate.lb_ns + aggregate.dtw_ns, 0u);
}

// Disabling a stage can only shift work to later stages, never change the
// answer; enabling Kim + Improved must strictly reduce exact-DTW calls on a
// workload where the filter has anything to do at all.
TEST(CascadeStatsTest, StagesReduceExactDtwCallsWithoutChangingAnswers) {
  std::vector<Series> corpus = RandomWalkNormalForms(300, 81);
  std::vector<Series> queries = NoisyQueries(corpus, 16, 137);

  auto run = [&](bool kim, bool improved, QueryStats* total) {
    QueryEngineOptions opts;
    opts.normal_len = kLen;
    opts.cascade.kim = kim;
    opts.cascade.improved = improved;
    DtwQueryEngine engine(MakeNewPaaScheme(kLen, kDim), opts);
    engine.AddAll(corpus);
    std::vector<std::vector<Neighbor>> out;
    for (const Series& q : queries) {
      double epsilon = engine.KnnQuery(q, 3).back().distance;
      QueryStats s;
      out.push_back(engine.RangeQuery(q, 1.5 * epsilon, &s));
      *total += s;
    }
    return out;
  };

  QueryStats off, on;
  auto results_off = run(false, false, &off);
  auto results_on = run(true, true, &on);
  ASSERT_EQ(results_off.size(), results_on.size());
  for (std::size_t i = 0; i < results_off.size(); ++i) {
    ExpectSameNeighbors(results_on[i], results_off[i], "stage ablation");
  }
  EXPECT_LT(on.exact_dtw_calls, off.exact_dtw_calls)
      << "Kim+Improved pruned nothing on a workload built to exercise them";
  EXPECT_GT(on.kim_pruned + on.improved_pruned, 0u);
}

}  // namespace
}  // namespace humdex
