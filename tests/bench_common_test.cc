// The benchmark harness is part of the reproduction apparatus, so its
// generators get the same scrutiny: dataset families must be deterministic,
// mean-centered, the right shape, and genuinely distinct from one another.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common.h"
#include "datasets.h"
#include "ts/time_series.h"
#include "util/stats.h"

namespace humdex::bench {
namespace {

TEST(BenchDatasetsTest, TwentyFourFamiliesInPaperOrder) {
  auto datasets = Figure6Datasets(5, 64, 1);
  ASSERT_EQ(datasets.size(), 24u);
  EXPECT_EQ(datasets.front().name, "Sunspot");
  EXPECT_EQ(datasets[23].name, "Random walk");
  std::set<std::string> names;
  for (const auto& ds : datasets) names.insert(ds.name);
  EXPECT_EQ(names.size(), 24u);  // all distinct
}

TEST(BenchDatasetsTest, SeriesAreMeanCenteredAndSized) {
  auto datasets = Figure6Datasets(10, 128, 2);
  for (const auto& ds : datasets) {
    ASSERT_EQ(ds.series.size(), 10u) << ds.name;
    for (const Series& s : ds.series) {
      ASSERT_EQ(s.size(), 128u) << ds.name;
      EXPECT_NEAR(SeriesMean(s), 0.0, 1e-9) << ds.name;
      for (double v : s) EXPECT_TRUE(std::isfinite(v)) << ds.name;
    }
  }
}

TEST(BenchDatasetsTest, DeterministicForSeed) {
  auto a = Figure6Datasets(3, 64, 7);
  auto b = Figure6Datasets(3, 64, 7);
  for (std::size_t d = 0; d < a.size(); ++d) {
    for (std::size_t s = 0; s < a[d].series.size(); ++s) {
      EXPECT_EQ(a[d].series[s], b[d].series[s]);
    }
  }
  auto c = Figure6Datasets(3, 64, 8);
  EXPECT_NE(a[0].series[0], c[0].series[0]);
}

TEST(BenchDatasetsTest, FamiliesHaveDistinctShapes) {
  // Lag-1 autocorrelation separates the families: white-noise-like vs
  // random-walk-like vs periodic.
  auto datasets = Figure6Datasets(20, 256, 3);
  auto lag1 = [](const Series& s) {
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i + 1 < s.size(); ++i) num += s[i] * s[i + 1];
    for (double v : s) den += v * v;
    return den == 0.0 ? 0.0 : num / den;
  };
  auto mean_lag1 = [&](const NamedDataset& ds) {
    double sum = 0.0;
    for (const Series& s : ds.series) sum += lag1(s);
    return sum / static_cast<double>(ds.series.size());
  };
  double walk = 0.0, eeg = 0.0;
  for (const auto& ds : datasets) {
    if (ds.name == "Random walk") walk = mean_lag1(ds);
    if (ds.name == "EEG") eeg = mean_lag1(ds);
  }
  EXPECT_GT(walk, 0.9);  // near-unit-root
  EXPECT_LT(eeg, 0.8);   // noisier AR texture
}

TEST(BenchCommonTest, RandomWalkSetProperties) {
  auto set = RandomWalkSet(10, 64, 5);
  ASSERT_EQ(set.size(), 10u);
  for (const Series& s : set) {
    ASSERT_EQ(s.size(), 64u);
    EXPECT_NEAR(SeriesMean(s), 0.0, 1e-9);
  }
  EXPECT_EQ(RandomWalkSet(10, 64, 5)[3], set[3]);
}

TEST(BenchCommonTest, PhraseCorpusMatchesPaperShape) {
  auto corpus = PhraseCorpus(100, 9);
  ASSERT_EQ(corpus.size(), 100u);
  for (const Melody& m : corpus) {
    EXPECT_GE(m.size(), 15u);
    EXPECT_LE(m.size(), 30u);
  }
  auto normals = CorpusNormalForms(corpus, 128);
  ASSERT_EQ(normals.size(), 100u);
  for (const Series& s : normals) {
    EXPECT_EQ(s.size(), 128u);
    EXPECT_NEAR(SeriesMean(s), 0.0, 1e-9);
  }
}

TEST(BenchCommonTest, TableFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(-0.5, 3), "-0.500");
  EXPECT_EQ(Table::Int(42), "42");
}

}  // namespace
}  // namespace humdex::bench
