#include <gtest/gtest.h>

#include <cmath>

#include "util/eigen.h"
#include "util/random.h"

namespace humdex {
namespace {

TEST(EigenTest, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 5.0;
  a(2, 2) = 3.0;
  EigenDecomposition e = SymmetricEigen(a);
  ASSERT_EQ(e.eigenvalues.size(), 3u);
  EXPECT_NEAR(e.eigenvalues[0], 5.0, 1e-10);
  EXPECT_NEAR(e.eigenvalues[1], 3.0, 1e-10);
  EXPECT_NEAR(e.eigenvalues[2], 1.0, 1e-10);
}

TEST(EigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  EigenDecomposition e = SymmetricEigen(a);
  EXPECT_NEAR(e.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(e.eigenvalues[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  double s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::fabs(e.eigenvectors(0, 0)), s, 1e-9);
  EXPECT_NEAR(std::fabs(e.eigenvectors(0, 1)), s, 1e-9);
}

TEST(EigenTest, ReconstructsMatrix) {
  // A = V^T diag(w) V for random symmetric A.
  Rng rng(5);
  const std::size_t n = 8;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double v = rng.Gaussian();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  EigenDecomposition e = SymmetricEigen(a);
  Matrix recon(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        s += e.eigenvalues[k] * e.eigenvectors(k, i) * e.eigenvectors(k, j);
      }
      recon(i, j) = s;
    }
  }
  EXPECT_LT(Matrix::MaxAbsDiff(a, recon), 1e-8);
}

TEST(EigenTest, EigenvectorsOrthonormal) {
  Rng rng(9);
  const std::size_t n = 6;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double v = rng.Uniform(-1, 1);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  EigenDecomposition e = SymmetricEigen(a);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      double dot = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        dot += e.eigenvectors(p, k) * e.eigenvectors(q, k);
      }
      EXPECT_NEAR(dot, p == q ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(PcaTest, RecoversDominantDirection) {
  // Points spread along (1,1)/sqrt(2) with small orthogonal noise.
  Rng rng(21);
  const std::size_t rows = 500;
  Matrix data(rows, 2);
  for (std::size_t r = 0; r < rows; ++r) {
    double t = rng.Gaussian(0.0, 10.0);
    double noise = rng.Gaussian(0.0, 0.1);
    data(r, 0) = t + noise;
    data(r, 1) = t - noise;
  }
  Matrix basis = PrincipalComponents(data, 1);
  double s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::fabs(basis(0, 0)), s, 0.01);
  EXPECT_NEAR(std::fabs(basis(0, 1)), s, 0.01);
}

TEST(PcaTest, BasisRowsOrthonormal) {
  Rng rng(33);
  const std::size_t rows = 100, dims = 10;
  Matrix data(rows, dims);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < dims; ++c) data(r, c) = rng.Gaussian();
  }
  Matrix basis = PrincipalComponents(data, 4);
  ASSERT_EQ(basis.rows(), 4u);
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::size_t q = 0; q < 4; ++q) {
      double dot = 0.0;
      for (std::size_t k = 0; k < dims; ++k) dot += basis(p, k) * basis(q, k);
      EXPECT_NEAR(dot, p == q ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(PcaTest, ProjectionIsContraction) {
  // ||B u|| <= ||u|| for any u when B has orthonormal rows.
  Rng rng(47);
  const std::size_t rows = 60, dims = 16;
  Matrix data(rows, dims);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < dims; ++c) data(r, c) = rng.Gaussian();
  }
  Matrix basis = PrincipalComponents(data, 5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> u(dims);
    double norm_u = 0.0;
    for (double& v : u) {
      v = rng.Gaussian();
      norm_u += v * v;
    }
    auto proj = basis.MultiplyVector(u);
    double norm_p = 0.0;
    for (double v : proj) norm_p += v * v;
    EXPECT_LE(norm_p, norm_u + 1e-9);
  }
}

}  // namespace
}  // namespace humdex
