#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "util/random.h"
#include "util/stats.h"

namespace humdex::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(7);
  EXPECT_EQ(g.value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.value(), -3);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(HistogramTest, BucketBoundsTile) {
  // Buckets must tile the value range: upper(i) == lower(i+1), and every
  // value must land in the bucket whose bounds contain it.
  for (std::size_t b = 0; b + 1 < Histogram::kBucketCount; ++b) {
    EXPECT_EQ(Histogram::BucketUpperBound(b), Histogram::BucketLowerBound(b + 1))
        << "bucket " << b;
  }
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{7},
        std::uint64_t{8}, std::uint64_t{15}, std::uint64_t{16},
        std::uint64_t{17}, std::uint64_t{1000}, std::uint64_t{123456789},
        std::uint64_t{1} << 40, (std::uint64_t{1} << 63) + 5,
        ~std::uint64_t{0}}) {
    std::size_t b = Histogram::BucketFor(v);
    ASSERT_LT(b, Histogram::kBucketCount) << v;
    EXPECT_GE(v, Histogram::BucketLowerBound(b)) << v;
    if (b == Histogram::kBucketCount - 1) {
      EXPECT_LE(v, Histogram::BucketUpperBound(b)) << v;  // inclusive top
    } else {
      EXPECT_LT(v, Histogram::BucketUpperBound(b)) << v;
    }
  }
  // Bucket width never exceeds 1/8 of the lower bound (12.5% relative error).
  for (std::size_t b = 2 * Histogram::kSubCount; b < Histogram::kBucketCount;
       ++b) {
    std::uint64_t lo = Histogram::BucketLowerBound(b);
    std::uint64_t width = Histogram::BucketUpperBound(b) - lo;
    EXPECT_LE(width * Histogram::kSubCount, lo) << "bucket " << b;
  }
}

TEST(HistogramTest, CountSumMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  h.Record(3);
  h.Record(100);
  h.Record(100000);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 100103u);
  EXPECT_EQ(snap.max, 100000u);
  h.Reset();
  snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.Percentile(50.0), 0.0);
}

TEST(HistogramTest, ExactForSmallValues) {
  // Values below 16 map to width-1 buckets, so percentiles are near-exact.
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(5);
  HistogramSnapshot snap = h.Snapshot();
  double p50 = snap.Percentile(50.0);
  EXPECT_GE(p50, 5.0);
  EXPECT_LE(p50, 6.0);
  EXPECT_EQ(snap.max, 5u);
  EXPECT_EQ(snap.Percentile(100.0), 5.0);  // clamped to the exact max
}

// Percentile math against the exact reference in util/stats.h: the histogram
// estimate must stay within one bucket width (12.5% relative) plus the
// rank-convention slack of the exact linear-interpolated percentile.
TEST(HistogramTest, PercentilesMatchExactReference) {
  Rng rng(987);
  Histogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform latencies spanning ~4 decades, like real stage timings.
    double v = std::exp(rng.Uniform(std::log(100.0), std::log(1e7)));
    auto ns = static_cast<std::uint64_t>(v);
    samples.push_back(static_cast<double>(ns));
    h.Record(ns);
  }
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.count, samples.size());
  for (double p : {50.0, 90.0, 95.0, 99.0}) {
    double exact = Percentile(samples, p);
    double est = snap.Percentile(p);
    EXPECT_NEAR(est, exact, 0.15 * exact) << "p" << p;
  }
  EXPECT_EQ(static_cast<double>(snap.max),
            *std::max_element(samples.begin(), samples.end()));
}

TEST(MetricsRegistryTest, GetReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& c1 = registry.GetCounter("a.count");
  Counter& c2 = registry.GetCounter("a.count");
  EXPECT_EQ(&c1, &c2);
  c1.Increment(5);
  EXPECT_EQ(c2.value(), 5u);

  Gauge& g = registry.GetGauge("a.depth");
  g.Set(3);
  Histogram& h = registry.GetHistogram("a.latency_ns");
  h.Record(77);

  auto counters = registry.CounterValues();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "a.count");
  EXPECT_EQ(counters[0].second, 5u);
  auto gauges = registry.GaugeValues();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].second, 3);
  auto hists = registry.HistogramSnapshots();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].second.count, 1u);

  registry.ResetAll();
  EXPECT_EQ(c1.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsRegistryTest, DefaultIsProcessWide) {
  Counter& c = MetricsRegistry::Default().GetCounter("metrics_test.probe");
  std::uint64_t before = c.value();
  MetricsRegistry::Default().GetCounter("metrics_test.probe").Increment();
  EXPECT_EQ(c.value(), before + 1);
}

// Pull "key": <number> back out of the JSON text (first occurrence).
double JsonNumber(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\": ";
  std::size_t pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << json;
  if (pos == std::string::npos) return -1.0;
  return std::stod(json.substr(pos + needle.size()));
}

TEST(ExportTest, JsonRoundTripsValues) {
  MetricsRegistry registry;
  registry.GetCounter("rt.count").Increment(1234);
  registry.GetGauge("rt.depth").Set(-7);
  Histogram& h = registry.GetHistogram("rt.latency_ns");
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<std::uint64_t>(i));

  std::string json = ExportJson(registry);
  EXPECT_EQ(JsonNumber(json, "rt.count"), 1234.0);
  EXPECT_EQ(JsonNumber(json, "rt.depth"), -7.0);
  EXPECT_EQ(JsonNumber(json, "count"), 100.0);
  EXPECT_EQ(JsonNumber(json, "sum"), 5050.0);
  EXPECT_EQ(JsonNumber(json, "max"), 100.0);
  double p50 = JsonNumber(json, "p50");
  double exact = 50.0;
  EXPECT_NEAR(p50, exact, 0.15 * exact);
  // Structurally balanced object.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  // Sections always present, even when a kind is empty.
  MetricsRegistry empty_registry;
  std::string empty = ExportJson(empty_registry);
  EXPECT_NE(empty.find("\"counters\""), std::string::npos);
  EXPECT_NE(empty.find("\"gauges\""), std::string::npos);
  EXPECT_NE(empty.find("\"histograms\""), std::string::npos);
}

TEST(ExportTest, PrometheusPage) {
  MetricsRegistry registry;
  registry.GetCounter("q.range.count").Increment(3);
  registry.GetGauge("pool.depth").Set(11);
  Histogram& h = registry.GetHistogram("q.range.total_ns");
  h.Record(1000);
  h.Record(2000);

  std::string page = ExportPrometheus(registry);
  EXPECT_NE(page.find("# TYPE humdex_q_range_count counter"),
            std::string::npos);
  EXPECT_NE(page.find("humdex_q_range_count 3"), std::string::npos);
  EXPECT_NE(page.find("# TYPE humdex_pool_depth gauge"), std::string::npos);
  EXPECT_NE(page.find("humdex_pool_depth 11"), std::string::npos);
  EXPECT_NE(page.find("# TYPE humdex_q_range_total_ns summary"),
            std::string::npos);
  EXPECT_NE(page.find("humdex_q_range_total_ns_count 2"), std::string::npos);
  EXPECT_NE(page.find("humdex_q_range_total_ns_sum 3000"), std::string::npos);
  EXPECT_NE(page.find("quantile=\"0.5\""), std::string::npos);
}

TEST(ExportTest, WriteJsonSnapshotToFile) {
  MetricsRegistry registry;
  registry.GetCounter("file.count").Increment(9);
  std::string path = ::testing::TempDir() + "/metrics_snapshot.json";
  ASSERT_TRUE(WriteJsonSnapshot(registry, path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string body;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  std::fclose(f);
  EXPECT_EQ(JsonNumber(body, "file.count"), 9.0);
  EXPECT_FALSE(WriteJsonSnapshot(registry, "/nonexistent-dir/x/y.json"));
}

}  // namespace
}  // namespace humdex::obs
