// The paper's exactness guarantee (Theorem 1: no false dismissals through the
// envelope-transform filter cascade) must survive parallelization bit for
// bit: a batch query fanned across N workers has to return exactly the ids
// and distances the serial engine returns, for every index backend and
// feature scheme. These tests drive the batch APIs with 8 workers against a
// seeded corpus and require equality with the serial answers — run them under
// -DHUMDEX_SANITIZE=thread to check the read path for data races as well.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "gemini/query_engine.h"
#include "music/hummer.h"
#include "music/song_generator.h"
#include "qbh/qbh_system.h"
#include "ts/normal_form.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace humdex {
namespace {

constexpr std::size_t kLen = 64;
constexpr std::size_t kDim = 8;
constexpr std::size_t kThreads = 8;

std::vector<Series> RandomWalkNormalForms(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Series> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Series walk(kLen);
    double v = 0.0;
    for (double& x : walk) {
      v += rng.Uniform(-1.0, 1.0);
      x = v;
    }
    out.push_back(NormalForm(walk, kLen));
  }
  return out;
}

// Queries near (but not identical to) corpus members, so range queries have
// non-trivial result sets.
std::vector<Series> NoisyQueries(const std::vector<Series>& corpus,
                                 std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Series> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Series q = corpus[i % corpus.size()];
    for (double& x : q) x += rng.Uniform(-0.3, 0.3);
    out.push_back(NormalForm(q, kLen));
  }
  return out;
}

std::shared_ptr<FeatureScheme> SchemeFor(const std::string& name) {
  if (name == "new_paa") return MakeNewPaaScheme(kLen, kDim);
  return MakeDftScheme(kLen, kDim);
}

class ParallelQueryTest
    : public ::testing::TestWithParam<std::tuple<IndexKind, std::string>> {};

TEST_P(ParallelQueryTest, BatchRangeQueryMatchesSerialExactly) {
  auto [kind, scheme_name] = GetParam();
  QueryEngineOptions opts;
  opts.normal_len = kLen;
  opts.index.kind = kind;
  DtwQueryEngine engine(SchemeFor(scheme_name), opts);
  engine.AddAll(RandomWalkNormalForms(300, 11));
  std::vector<Series> queries = NoisyQueries(RandomWalkNormalForms(300, 11), 24, 77);

  // Epsilon calibrated from the corpus so result sets are non-empty but not
  // everything.
  double epsilon = engine.KnnQuery(queries[0], 5).back().distance;

  std::vector<std::vector<Neighbor>> serial(queries.size());
  std::vector<QueryStats> serial_stats(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    serial[i] = engine.RangeQuery(queries[i], epsilon, &serial_stats[i]);
  }
  std::size_t nonempty = 0;
  for (const auto& r : serial) nonempty += r.empty() ? 0 : 1;
  ASSERT_GT(nonempty, queries.size() / 2) << "epsilon too small to exercise anything";

  QueryStats aggregate;
  std::vector<std::vector<Neighbor>> batch =
      engine.RangeQueryBatch(queries, epsilon, kThreads, &aggregate);

  ASSERT_EQ(batch.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(batch[i].size(), serial[i].size()) << "query " << i;
    for (std::size_t j = 0; j < serial[i].size(); ++j) {
      EXPECT_EQ(batch[i][j].id, serial[i][j].id) << "query " << i;
      EXPECT_EQ(batch[i][j].distance, serial[i][j].distance) << "query " << i;
    }
  }

  QueryStats expected;
  for (const QueryStats& s : serial_stats) expected += s;
  EXPECT_EQ(aggregate.index_candidates, expected.index_candidates);
  EXPECT_EQ(aggregate.lb_survivors, expected.lb_survivors);
  EXPECT_EQ(aggregate.results, expected.results);
  EXPECT_EQ(aggregate.page_accesses, expected.page_accesses);
  EXPECT_EQ(aggregate.exact_dtw_calls, expected.exact_dtw_calls);
}

TEST_P(ParallelQueryTest, BatchKnnQueryMatchesSerialExactly) {
  auto [kind, scheme_name] = GetParam();
  QueryEngineOptions opts;
  opts.normal_len = kLen;
  opts.index.kind = kind;
  DtwQueryEngine engine(SchemeFor(scheme_name), opts);
  engine.AddAll(RandomWalkNormalForms(250, 23));
  std::vector<Series> queries = NoisyQueries(RandomWalkNormalForms(250, 23), 20, 91);

  const std::size_t k = 7;
  std::vector<std::vector<Neighbor>> serial(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    serial[i] = engine.KnnQuery(queries[i], k);
    ASSERT_EQ(serial[i].size(), k);
  }

  std::vector<std::vector<Neighbor>> batch = engine.KnnQueryBatch(queries, k, kThreads);
  ASSERT_EQ(batch.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(batch[i].size(), serial[i].size()) << "query " << i;
    for (std::size_t j = 0; j < serial[i].size(); ++j) {
      EXPECT_EQ(batch[i][j].id, serial[i][j].id) << "query " << i;
      EXPECT_EQ(batch[i][j].distance, serial[i][j].distance) << "query " << i;
    }
  }
}

TEST_P(ParallelQueryTest, BatchResultsIndependentOfWorkerCount) {
  auto [kind, scheme_name] = GetParam();
  QueryEngineOptions opts;
  opts.normal_len = kLen;
  opts.index.kind = kind;
  DtwQueryEngine engine(SchemeFor(scheme_name), opts);
  engine.AddAll(RandomWalkNormalForms(200, 5));
  std::vector<Series> queries = NoisyQueries(RandomWalkNormalForms(200, 5), 16, 3);

  std::vector<std::vector<Neighbor>> one = engine.KnnQueryBatch(queries, 5, 1);
  for (std::size_t threads : {2u, 8u}) {
    std::vector<std::vector<Neighbor>> many = engine.KnnQueryBatch(queries, 5, threads);
    ASSERT_EQ(many.size(), one.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
      ASSERT_EQ(many[i].size(), one[i].size());
      for (std::size_t j = 0; j < one[i].size(); ++j) {
        EXPECT_EQ(many[i][j].id, one[i][j].id);
        EXPECT_EQ(many[i][j].distance, one[i][j].distance);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAndSchemes, ParallelQueryTest,
    ::testing::Combine(::testing::Values(IndexKind::kRStarTree,
                                         IndexKind::kGridFile,
                                         IndexKind::kLinearScan),
                       ::testing::Values(std::string("new_paa"),
                                         std::string("dft"))),
    [](const ::testing::TestParamInfo<ParallelQueryTest::ParamType>& info) {
      const char* kind = "";
      switch (std::get<0>(info.param)) {
        case IndexKind::kRStarTree: kind = "rstar"; break;
        case IndexKind::kGridFile: kind = "grid"; break;
        case IndexKind::kLinearScan: kind = "linear"; break;
      }
      return std::string(kind) + "_" + std::get<1>(info.param);
    });

// End-to-end: QbhSystem::QueryBatch over hummed queries equals serial Query
// for a couple of feature schemes.
class QbhQueryBatchTest : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(QbhQueryBatchTest, BatchEqualsSerial) {
  QbhOptions opts;
  opts.scheme = GetParam();
  QbhSystem system(opts);
  SongGenerator gen(29);
  std::vector<Melody> corpus = gen.GeneratePhrases(80);
  for (Melody& m : corpus) system.AddMelody(std::move(m));
  system.Build();

  std::vector<Series> hums;
  for (std::size_t i = 0; i < 12; ++i) {
    Hummer hummer(HummerProfile::Good(), 100 + i);
    hums.push_back(hummer.Hum(*system.melody(static_cast<std::int64_t>(i * 5))));
  }

  std::vector<std::vector<QbhMatch>> serial(hums.size());
  std::vector<QueryStats> serial_stats(hums.size());
  for (std::size_t i = 0; i < hums.size(); ++i) {
    serial[i] = system.Query(hums[i], 5, &serial_stats[i]);
  }

  QueryStats aggregate;
  std::vector<std::vector<QbhMatch>> batch =
      system.QueryBatch(hums, 5, kThreads, &aggregate);

  ASSERT_EQ(batch.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(batch[i].size(), serial[i].size());
    for (std::size_t j = 0; j < serial[i].size(); ++j) {
      EXPECT_EQ(batch[i][j].id, serial[i][j].id);
      EXPECT_EQ(batch[i][j].name, serial[i][j].name);
      EXPECT_EQ(batch[i][j].distance, serial[i][j].distance);
    }
  }
  QueryStats expected;
  for (const QueryStats& s : serial_stats) expected += s;
  EXPECT_EQ(aggregate.exact_dtw_calls, expected.exact_dtw_calls);
  EXPECT_EQ(aggregate.page_accesses, expected.page_accesses);
}

INSTANTIATE_TEST_SUITE_P(Schemes, QbhQueryBatchTest,
                         ::testing::Values(SchemeKind::kNewPaa, SchemeKind::kDft),
                         [](const ::testing::TestParamInfo<SchemeKind>& info) {
                           return info.param == SchemeKind::kNewPaa ? "new_paa"
                                                                    : "dft";
                         });

}  // namespace
}  // namespace humdex
